#pragma once

// The netcong property registry: every invariant the property-based suite
// knows how to check, grouped into three families (see DESIGN.md §9):
//
//   gen   — generator well-formedness: any configuration the bounded domain
//           can produce yields a structurally sound world (unique addresses,
//           connected intra-AS graphs, consistent link endpoints, profile
//           knobs honored within statistical bounds);
//   meta  — metamorphic inference invariants: transformations of the input
//           that must not change (or must change predictably) the output of
//           MAP-IT, bdrmap, matching, tomography, and threshold selection;
//   diff  — differential determinism: one harness running the same campaign
//           across worker counts, path-cache settings, fault severities, and
//           instrumentation toggles, diffing full output fingerprints;
//   ingest— serve-subsystem equivalence: incremental snapshots bit-identical
//           to batch runs over the same event-log prefix for any producer
//           interleaving and shard count, plus queue-accounting
//           conservation under both overflow policies;
//   pathmodel — CC simulator determinism (re-runs and flow insertion orders
//           reproduce bit-identical stats fingerprints) and classifier
//           metamorphism (joint bandwidth/demand scaling preserves labels);
//   adversary — adversarial scenarios (sim/adversary) are pure functions of
//           (seed, config): campaign output bit-identical across the
//           threads x cache x obs matrix, churn leaves the pre-epoch prefix
//           equal to an un-churned run, and Misleading Stars produces one
//           observed corpus with two distinct ground truths.
//
// Both `netcong_check` and the gtest wrappers in tests/properties/ drive
// the same registry, so a seed printed by either reproduces in the other.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/pbt.h"

namespace netcong::check {

struct Property {
  std::string name;     // "family.short_name", e.g. "gen.addresses_unique"
  std::string family;   // "gen", "meta", or "diff"
  std::string summary;  // one line, shown by `netcong_check --list`
  // Iteration budget used when the caller's Config leaves iterations <= 0.
  // Scaled to keep the whole suite within the tier-1 time budget; raise
  // globally with NETCONG_PBT_ITERS or per-run with --iterations.
  int default_iterations = 20;
  std::function<util::pbt::CheckResult(util::pbt::Config)> run;
};

// All registered properties, grouped by family then name.
const std::vector<Property>& all_properties();

// Lookup by exact name; nullptr when unknown.
const Property* find_property(std::string_view name);

// Distinct family names in registry order.
std::vector<std::string> families();

// Runs one property, applying its default iteration budget when the config
// leaves iterations unset (<= 0).
util::pbt::CheckResult run_property(const Property& prop,
                                    util::pbt::Config cfg);

// Family registration hooks (one per translation unit).
void register_gen_properties(std::vector<Property>& out);
void register_meta_properties(std::vector<Property>& out);
void register_diff_properties(std::vector<Property>& out);
void register_util_properties(std::vector<Property>& out);
void register_ingest_properties(std::vector<Property>& out);
void register_pathmodel_properties(std::vector<Property>& out);
void register_adversary_properties(std::vector<Property>& out);

}  // namespace netcong::check
