# Empty compiler generated dependencies file for netcong_infer.
# This may be replaced when dependencies are built.
