# Empty compiler generated dependencies file for netcong_topo.
# This may be replaced when dependencies are built.
