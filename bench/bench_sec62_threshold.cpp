// Section 6.2: what throughput drop constitutes congestion? Two parts:
//  (1) flow-level: over every (source network, client ISP) diurnal group in
//      a month-long campaign, compare the peak-hour drop distribution of
//      truly congested vs busy-but-uncongested interconnections and sweep
//      the detection threshold (ROC);
//  (2) packet-level validation: a 10-second TCP test against a droptail
//      bottleneck at increasing background load, showing the gradual (not
//      binary) throughput degradation that makes thresholding ambiguous.

#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/diurnal.h"
#include "core/threshold.h"
#include "sim/packet/dumbbell.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header("Section 6.2",
                      "Thresholds for congestion detection: drop "
                      "distributions, ROC, and packet-level validation");

  bench::Context ctx(bench::bench_config());
  bench::CampaignData data =
      bench::run_standard_campaign(ctx, 28, 10.0, /*seed=*/10);

  auto source_of = [&](const measure::NdtRecord& t) {
    const auto& info = ctx.world.topo->as_info(t.server_asn);
    return info.type == topo::AsType::kTransit ? info.name : std::string();
  };
  auto isp_of_fn = [&](const measure::NdtRecord& t) {
    auto it = ctx.isp_of.find(t.client_asn);
    return it == ctx.isp_of.end() ? std::string() : it->second;
  };
  auto groups = core::build_diurnal_groups(data.result.tests, ctx.world,
                                           source_of, isp_of_fn);

  std::vector<core::LabeledDrop> drops;
  for (const auto& [key, g] : groups) {
    auto cmp = stats::compare_peak_offpeak(g.throughput);
    if (cmp.peak_count < 25 || cmp.offpeak_count < 25) continue;
    if (std::isnan(cmp.relative_drop)) continue;
    core::LabeledDrop d;
    d.relative_drop = cmp.relative_drop;
    d.samples = g.tests;
    // Resolve the source transit's ASN by name.
    topo::Asn src = topo::kInvalidAsn;
    for (topo::Asn a : ctx.world.topo->all_asns()) {
      if (ctx.world.topo->as_info(a).name == key.source) {
        src = a;
        break;
      }
    }
    if (src == topo::kInvalidAsn) continue;
    d.truth_congested = core::truth_pair_congested(ctx.world, src, key.isp);
    drops.push_back(d);
  }

  auto dist = core::drop_distributions(drops);
  std::printf("groups analyzed: %zu (%zu truly congested, %zu not)\n\n",
              drops.size(), dist.congested.size(), dist.uncongested.size());
  std::printf("peak-drop distribution: congested median %.0f%%, "
              "uncongested median %.0f%%, separation %.0f%% (%s)\n\n",
              100 * dist.congested_median, 100 * dist.uncongested_median,
              100 * dist.separation,
              dist.separation < 0 ? "distributions OVERLAP: no clean "
                                    "threshold exists — the paper's point"
                                  : "separable in this scenario");

  util::TextTable roc_table({"threshold", "TPR", "FPR", "flagged groups"});
  auto roc = core::roc_sweep(drops, 20);
  for (const auto& p : roc) {
    if (std::fmod(p.threshold * 100.0, 10.0) > 1e-9) continue;
    roc_table.add_row({util::format("%.2f", p.threshold),
                       util::format("%.2f", p.tpr),
                       util::format("%.2f", p.fpr),
                       std::to_string(p.predicted_positive)});
  }
  std::printf("%s", roc_table.render().c_str());
  auto best = core::best_threshold(roc);
  std::printf("best threshold by Youden's J: %.2f (TPR %.2f, FPR %.2f)\n",
              best.threshold, best.tpr, best.fpr);

  // ---- packet-level validation ----
  std::printf("\npacket-level: 10s test flow vs background load on a "
              "100 Mbps droptail bottleneck\n");
  util::TextTable pkt({"background flows", "test goodput", "drop vs idle",
                       "mean RTT ms", "bottleneck drops"});
  double idle_goodput = 0.0;
  for (int n_bg : {0, 4, 8, 16, 24, 32, 48}) {
    sim::packet::Dumbbell::Params params;
    params.bottleneck_mbps = 100.0;
    params.buffer_packets = 400;
    params.duration_s = 40.0;
    sim::packet::Dumbbell d(params);
    for (int i = 0; i < n_bg; ++i) {
      sim::packet::FlowSpec bg;
      bg.base_rtt_s = 0.04;
      d.add_flow(bg);
    }
    sim::packet::FlowSpec test_flow;
    test_flow.base_rtt_s = 0.04;
    test_flow.start_time_s = 25.0;
    test_flow.stop_time_s = 35.0;
    int id = d.add_flow(test_flow);
    auto result = d.run();
    const auto& f = result.flows[static_cast<std::size_t>(id)];
    double goodput = sim::packet::Dumbbell::goodput_over(f.stats, 1500,
                                                         25.0, 35.0);
    if (n_bg == 0) idle_goodput = goodput;
    pkt.add_row({std::to_string(n_bg), util::format("%.1f Mbps", goodput),
                 idle_goodput > 0
                     ? bench::pct(100.0 * (1.0 - goodput / idle_goodput), 0)
                     : "-",
                 util::format("%.1f", f.mean_rtt_ms),
                 std::to_string(result.bottleneck_drops)});
  }
  std::printf("%s", pkt.render().c_str());
  bench::print_footnote(
      "the degradation is gradual in load: a 20-30% drop is compatible with "
      "both a busy-but-uncongested link and mild congestion (the Comcast "
      "case of Figure 5), so no universal threshold exists");
  return 0;
}
