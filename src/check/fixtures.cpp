#include "check/fixtures.h"

#include <cmath>

#include "measure/ark.h"
#include "util/strings.h"

namespace netcong::check {

using gen::GeneratorConfig;
using util::pbt::Domain;

namespace {

// Simplest values each knob shrinks toward.
constexpr double kMinScale = 0.004;
constexpr int kMinServers = 2;
constexpr int kMinClients = 2;
constexpr int kMinAlexa = 2;

void shrink_int(std::vector<GeneratorConfig>& out, const GeneratorConfig& base,
                int GeneratorConfig::*field, int target) {
  int v = base.*field;
  if (v == target) return;
  GeneratorConfig snap = base;
  snap.*field = target;
  out.push_back(snap);
  int mid = target + (v - target) / 2;
  if (mid != target && mid != v) {
    GeneratorConfig half = base;
    half.*field = mid;
    out.push_back(half);
  }
}

void shrink_double(std::vector<GeneratorConfig>& out,
                   const GeneratorConfig& base,
                   double GeneratorConfig::*field, double target) {
  double v = base.*field;
  if (std::fabs(v - target) < 1e-9) return;
  GeneratorConfig snap = base;
  snap.*field = target;
  out.push_back(snap);
  double mid = target + (v - target) / 2.0;
  // Snap when close enough that halving would descend forever.
  if (std::fabs(mid - target) > 1e-3 && std::fabs(mid - v) > 1e-9) {
    GeneratorConfig half = base;
    half.*field = mid;
    out.push_back(half);
  }
}

}  // namespace

Domain<GeneratorConfig> config_domain() {
  Domain<GeneratorConfig> d;
  d.generate = [](util::Rng& rng) {
    GeneratorConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1000000000));
    cfg.customer_scale = rng.uniform(kMinScale, 0.03);
    cfg.mlab_servers = static_cast<int>(rng.uniform_int(kMinServers, 12));
    cfg.speedtest_servers_2015 = static_cast<int>(rng.uniform_int(2, 30));
    cfg.speedtest_servers_2017 =
        cfg.speedtest_servers_2015 + static_cast<int>(rng.uniform_int(0, 10));
    cfg.clients_per_access_isp = static_cast<int>(rng.uniform_int(kMinClients, 24));
    cfg.alexa_targets = static_cast<int>(rng.uniform_int(kMinAlexa, 20));
    cfg.ixp_peer_fraction = rng.uniform(0.0, 0.5);
    cfg.dns_ptr_coverage = rng.uniform(0.3, 1.0);
    cfg.announce_staleness = rng.uniform(0.0, 0.10);
    cfg.congest_internal_links = rng.chance(0.3);
    return cfg;
  };
  d.shrink = [](const GeneratorConfig& base) {
    std::vector<GeneratorConfig> out;
    if (base.seed != 1) {
      GeneratorConfig c = base;
      c.seed = 1;
      out.push_back(c);
    }
    if (base.congest_internal_links) {
      GeneratorConfig c = base;
      c.congest_internal_links = false;
      out.push_back(c);
    }
    shrink_int(out, base, &GeneratorConfig::clients_per_access_isp,
               kMinClients);
    shrink_double(out, base, &GeneratorConfig::customer_scale, kMinScale);
    shrink_int(out, base, &GeneratorConfig::mlab_servers, kMinServers);
    shrink_int(out, base, &GeneratorConfig::speedtest_servers_2015, 2);
    // Keep the 2015 fleet a prefix of 2017's: shrink 2017 down to 2015.
    shrink_int(out, base, &GeneratorConfig::speedtest_servers_2017,
               base.speedtest_servers_2015);
    shrink_int(out, base, &GeneratorConfig::alexa_targets, kMinAlexa);
    shrink_double(out, base, &GeneratorConfig::ixp_peer_fraction, 0.0);
    shrink_double(out, base, &GeneratorConfig::dns_ptr_coverage, 1.0);
    shrink_double(out, base, &GeneratorConfig::announce_staleness, 0.0);
    return out;
  };
  d.describe = describe_config;
  return d;
}

std::string describe_config(const GeneratorConfig& cfg) {
  return util::format(
      "{seed=%llu scale=%.4g mlab=%d st15=%d st17=%d clients=%d alexa=%d "
      "ixp=%.3f dns=%.3f stale=%.3f congest_internal=%d}",
      static_cast<unsigned long long>(cfg.seed), cfg.customer_scale,
      cfg.mlab_servers, cfg.speedtest_servers_2015,
      cfg.speedtest_servers_2017, cfg.clients_per_access_isp,
      cfg.alexa_targets, cfg.ixp_peer_fraction, cfg.dns_ptr_coverage,
      cfg.announce_staleness, cfg.congest_internal_links ? 1 : 0);
}

Stack::Stack(const GeneratorConfig& cfg)
    : world(gen::generate_world(cfg)),
      bgp(*world.topo),
      fwd(*world.topo, bgp),
      model(*world.topo, *world.traffic),
      mlab("mlab", *world.topo, world.mlab_servers) {}

std::vector<gen::TestRequest> dense_schedule(const gen::World& world,
                                             int rounds) {
  std::vector<gen::TestRequest> schedule;
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < world.clients.size(); ++i) {
      schedule.push_back(
          {world.clients[i],
           10.0 + round * 0.05 + static_cast<double>(i) * 0.003});
    }
  }
  return schedule;
}

std::vector<measure::TracerouteRecord> vp_corpus(const Stack& stack,
                                                 std::size_t vp_index,
                                                 std::uint64_t seed) {
  if (stack.world.ark_vps.empty()) return {};
  std::uint32_t vp =
      stack.world.ark_vps[vp_index % stack.world.ark_vps.size()];
  measure::ArkCampaignOptions options;
  util::Rng rng(seed);
  return measure::ark_full_prefix_campaign(stack.world, stack.fwd, vp,
                                           options, rng);
}

}  // namespace netcong::check
