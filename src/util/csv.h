#pragma once

// CSV emission and parsing (machine-readable companion to TextTable).
// Writer and parser are RFC-4180 inverses: parse_csv(w.render()) returns
// exactly the header + rows that were added, including fields containing
// commas, quotes, and embedded newlines (metrics/data-quality exports
// depend on this round-trip).

#include <string>
#include <vector>

namespace netcong::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);

  // RFC-4180-style escaping (quotes fields containing , " or newline).
  std::string render() const;

  // Writes render() to the given path; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Parses RFC-4180 CSV text into rows of fields: quoted fields may contain
// commas, doubled quotes ("" -> "), and embedded CR/LF; rows end at an
// unquoted newline (LF or CRLF). A trailing newline does not produce an
// empty final row. The first row is typically the header.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace netcong::util
