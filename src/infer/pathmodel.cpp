#include "infer/pathmodel.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "stats/descriptive.h"

namespace netcong::infer {

const char* flow_label_name(FlowLabel label) {
  switch (label) {
    case FlowLabel::kBandwidthLimited:
      return "bandwidth_limited";
    case FlowLabel::kCongestionLimited:
      return "congestion_limited";
    case FlowLabel::kSenderLimited:
      return "sender_limited";
  }
  return "?";
}

const char* bottleneck_site_name(BottleneckSite site) {
  switch (site) {
    case BottleneckSite::kNone:
      return "none";
    case BottleneckSite::kAccess:
      return "access";
    case BottleneckSite::kInterdomain:
      return "interdomain";
  }
  return "?";
}

bool parse_flow_label(const char* name, FlowLabel* out) {
  if (std::strcmp(name, "bandwidth_limited") == 0) {
    *out = FlowLabel::kBandwidthLimited;
    return true;
  }
  if (std::strcmp(name, "congestion_limited") == 0) {
    *out = FlowLabel::kCongestionLimited;
    return true;
  }
  if (std::strcmp(name, "sender_limited") == 0) {
    *out = FlowLabel::kSenderLimited;
    return true;
  }
  return false;
}

namespace {

// Cumulative packets acked at time t (last trace point no later than t).
std::int64_t acked_at(const FlowTrace& trace, double t) {
  std::int64_t best = -1;
  for (const auto& [time, seq] : trace.ack_trace) {
    if (time > t) break;
    best = seq;
  }
  return best;
}

double goodput_pps_over(const FlowTrace& trace, double from_s, double to_s) {
  if (to_s <= from_s) return 0.0;
  std::int64_t d = acked_at(trace, to_s) - acked_at(trace, from_s);
  if (d <= 0) return 0.0;
  return static_cast<double>(d) / (to_s - from_s);
}

// Windowed-max delivery rate over short spans of the ack trace. Seq deltas
// (not point counts) keep this correct under downsampled traces.
double btlbw_pps_estimate(const FlowTrace& trace, int window) {
  const auto& tr = trace.ack_trace;
  double best = 0.0;
  std::size_t w = static_cast<std::size_t>(std::max(2, window));
  for (std::size_t i = 0; i + w < tr.size(); ++i) {
    double dt = tr[i + w].first - tr[i].first;
    auto dseq = tr[i + w].second - tr[i].second;
    if (dt <= 0.0 || dseq <= 0) continue;
    best = std::max(best, static_cast<double>(dseq) / dt);
  }
  return best;
}

}  // namespace

PathModelResult classify_flow(const FlowTrace& trace,
                              const PathModelConfig& config) {
  PathModelResult r;
  if (trace.ack_trace.size() < 4 || trace.rtt_samples_ms.empty() ||
      trace.rtt_samples_ms.size() != trace.rtt_sample_times_s.size() ||
      trace.stop_s <= trace.start_s) {
    return r;  // valid = false
  }

  // --- fit the path model ---------------------------------------------------
  r.btlbw_pps = btlbw_pps_estimate(trace, config.rate_window_acks);
  r.btlbw_mbps = r.btlbw_pps * trace.mss_bytes * 8.0 / 1e6;
  r.rtprop_ms = stats::min(trace.rtt_samples_ms);
  r.bdp_packets = r.btlbw_pps * (r.rtprop_ms / 1000.0);
  if (r.btlbw_pps <= 0.0 || r.rtprop_ms <= 0.0) return r;

  // --- steady-state evidence ------------------------------------------------
  double duration = trace.stop_s - trace.start_s;
  double steady_from =
      trace.start_s + std::max(config.steady_skip_min_s,
                               config.steady_skip_fraction * duration);
  if (steady_from >= trace.stop_s) {
    steady_from = trace.start_s + 0.5 * duration;
  }

  std::vector<double> steady_rtts;
  for (std::size_t i = 0; i < trace.rtt_samples_ms.size(); ++i) {
    if (trace.rtt_sample_times_s[i] >= steady_from) {
      steady_rtts.push_back(trace.rtt_samples_ms[i]);
    }
  }
  if (steady_rtts.empty()) return r;  // flow died before steady state
  r.valid = true;

  r.steady_p10_rtt_ms = stats::percentile(steady_rtts, 10.0);
  r.steady_p50_rtt_ms = stats::percentile(steady_rtts, 50.0);

  double goodput_pps = goodput_pps_over(trace, steady_from, trace.stop_s);
  r.goodput_mbps = goodput_pps * trace.mss_bytes * 8.0 / 1e6;
  double mean_rtt_s = stats::mean(steady_rtts) / 1000.0;
  r.avg_inflight_packets = goodput_pps * mean_rtt_s;

  // --- label ----------------------------------------------------------------
  double inflated_ms = r.rtprop_ms * (1.0 + config.rtt_inflation_alpha) +
                       config.rtt_inflation_floor_ms;
  if (r.steady_p10_rtt_ms > inflated_ms) {
    // Even the quietest steady-state RTTs carry queueing delay: a standing
    // queue the flow cannot drain, i.e. competitors keep it full.
    r.label = FlowLabel::kCongestionLimited;
  } else if (r.avg_inflight_packets <
             config.sender_limited_bdp_fraction * r.bdp_packets) {
    // Below-BDP in-flight with a flat RTT is a sender that never offered
    // enough data. Below-BDP *with* majority-inflated RTT is a flow that
    // competitors would not let grow — congestion whose queue still drains
    // at the low percentiles (loss-synchronized cross traffic).
    r.label = r.steady_p50_rtt_ms > inflated_ms
                  ? FlowLabel::kCongestionLimited
                  : FlowLabel::kSenderLimited;
  } else {
    r.label = FlowLabel::kBandwidthLimited;
  }

  // --- localization (congestion-limited only) -------------------------------
  if (r.label != FlowLabel::kCongestionLimited) return r;

  // First RTT sample that is inflated *and* stays inflated: the median of
  // samples in the following persistence window is above threshold too.
  for (std::size_t i = 0; i < trace.rtt_samples_ms.size(); ++i) {
    if (trace.rtt_samples_ms[i] <= inflated_ms) continue;
    double t = trace.rtt_sample_times_s[i];
    std::vector<double> window;
    for (std::size_t j = i; j < trace.rtt_samples_ms.size() &&
                            trace.rtt_sample_times_s[j] <=
                                t + config.onset_persistence_s;
         ++j) {
      window.push_back(trace.rtt_samples_ms[j]);
    }
    if (!window.empty() && stats::median(window) > inflated_ms) {
      r.inflation_onset_s = t;
      break;
    }
  }

  // When has the flow itself delivered one BDP? Before that point it cannot
  // have built the standing queue it is observing.
  std::int64_t base = trace.ack_trace.front().second;
  auto bdp = static_cast<std::int64_t>(std::ceil(r.bdp_packets));
  for (const auto& [time, seq] : trace.ack_trace) {
    if (seq - base >= bdp) {
      r.own_fill_s = time;
      break;
    }
  }

  if (r.inflation_onset_s >= 0.0) {
    // Pre-existing queue only when inflation clearly precedes the fill
    // point; near-ties mean the queue grew alongside the flow's own
    // ramp-up, which points at locally-induced access congestion.
    double slack_s = config.onset_fill_slack_rtprops * r.rtprop_ms / 1000.0;
    bool pre_existing =
        r.own_fill_s < 0.0 || r.inflation_onset_s < r.own_fill_s - slack_s;
    r.site =
        pre_existing ? BottleneckSite::kInterdomain : BottleneckSite::kAccess;
  }
  return r;
}

}  // namespace netcong::infer
