
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/address_alloc.cpp" "src/gen/CMakeFiles/netcong_gen.dir/address_alloc.cpp.o" "gcc" "src/gen/CMakeFiles/netcong_gen.dir/address_alloc.cpp.o.d"
  "/root/repo/src/gen/cities.cpp" "src/gen/CMakeFiles/netcong_gen.dir/cities.cpp.o" "gcc" "src/gen/CMakeFiles/netcong_gen.dir/cities.cpp.o.d"
  "/root/repo/src/gen/paper_data.cpp" "src/gen/CMakeFiles/netcong_gen.dir/paper_data.cpp.o" "gcc" "src/gen/CMakeFiles/netcong_gen.dir/paper_data.cpp.o.d"
  "/root/repo/src/gen/profiles.cpp" "src/gen/CMakeFiles/netcong_gen.dir/profiles.cpp.o" "gcc" "src/gen/CMakeFiles/netcong_gen.dir/profiles.cpp.o.d"
  "/root/repo/src/gen/workload.cpp" "src/gen/CMakeFiles/netcong_gen.dir/workload.cpp.o" "gcc" "src/gen/CMakeFiles/netcong_gen.dir/workload.cpp.o.d"
  "/root/repo/src/gen/world.cpp" "src/gen/CMakeFiles/netcong_gen.dir/world.cpp.o" "gcc" "src/gen/CMakeFiles/netcong_gen.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/netcong_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netcong_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netcong_util.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/netcong_route.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/netcong_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
