#include "helpers.h"

#include <map>

#include "topo/geo.h"

namespace netcong::test {

using topo::Asn;
using topo::AsType;
using topo::CityId;
using topo::HostKind;
using topo::IpAddr;
using topo::LinkId;
using topo::LinkKind;
using topo::Prefix;
using topo::RelType;
using topo::RouterId;
using topo::RouterRole;

HandTopo::HandTopo() {
  struct CityDef {
    const char* name;
    const char* code;
    double lat, lon;
    int utc;
  };
  const CityDef defs[] = {
      {"NewYork", "nyc", 40.71, -74.01, -5},
      {"Chicago", "chi", 41.88, -87.63, -6},
      {"LosAngeles", "lax", 34.05, -118.24, -8},
      {"Atlanta", "atl", 33.75, -84.39, -5},
      {"Dallas", "dfw", 32.78, -96.80, -6},
  };
  for (const auto& d : defs) {
    topo::City c;
    c.name = d.name;
    c.code = d.code;
    c.lat = d.lat;
    c.lon = d.lon;
    c.utc_offset_hours = d.utc;
    c.population_weight = 1.0;
    cities_.push_back(topo_.add_city(c));
  }
}

IpAddr HandTopo::next_infra(Asn asn) {
  AsPools& p = pools_.at(asn);
  return p.block.nth(32768 + p.infra_next++);
}

IpAddr HandTopo::next_host_addr(Asn asn) {
  AsPools& p = pools_.at(asn);
  return p.block.nth(1 + p.host_next++);
}

void HandTopo::add_as(Asn asn, const std::string& name, AsType type,
                      const std::vector<int>& city_indices,
                      const std::string& org_name) {
  const std::string org_label = org_name.empty() ? name + " Org" : org_name;
  topo::OrgId org;
  for (const auto& o : topo_.orgs()) {
    if (o.name == org_label) {
      org = o.id;
      break;
    }
  }
  if (!org.valid()) org = topo_.add_org(org_label);
  topo::AsInfo info;
  info.asn = asn;
  info.name = name;
  info.org = org;
  info.type = type;
  for (int i : city_indices) info.cities.push_back(city(i));
  topo_.add_as(info);

  Prefix block(IpAddr(next_block_++, 0, 0, 0), 16);
  pools_[asn] = AsPools{0, 0, block};
  topo_.own_prefix(block, asn);
  topo_.announce_prefix(block, asn);

  std::vector<RouterId> backbones;
  for (int i : city_indices) {
    RouterId bb = topo_.add_router(asn, city(i), RouterRole::kBackbone,
                                   "bb1." + topo_.city(city(i)).code);
    topo_.set_router_mgmt_addr(bb, next_infra(asn));
    backbones.push_back(bb);
  }
  for (std::size_t i = 0; i < backbones.size(); ++i) {
    for (std::size_t j = i + 1; j < backbones.size(); ++j) {
      topo::Topology::LinkSpec spec;
      spec.router_a = backbones[i];
      spec.router_b = backbones[j];
      spec.kind = LinkKind::kInternal;
      spec.capacity_mbps = 100000.0;
      spec.prop_delay_ms = topo::propagation_delay_ms(topo::city_distance_km(
          topo_.city(topo_.router(backbones[i]).city),
          topo_.city(topo_.router(backbones[j]).city)));
      spec.addr_a = next_infra(asn);
      spec.addr_b = next_infra(asn);
      topo_.add_link(spec);
    }
  }
  // One access + one hosting router in the first city.
  for (auto [role, prefix] :
       {std::pair{RouterRole::kAccess, "agg"},
        std::pair{RouterRole::kHosting, "host"}}) {
    RouterId r = topo_.add_router(asn, city(city_indices[0]), role,
                                  std::string(prefix) + "1");
    topo::Topology::LinkSpec spec;
    spec.router_a = r;
    spec.router_b = backbones[0];
    spec.kind = LinkKind::kInternal;
    spec.capacity_mbps = 40000.0;
    spec.prop_delay_ms = 0.2;
    spec.addr_a = next_infra(asn);
    spec.addr_b = next_infra(asn);
    topo_.add_link(spec);
    topo_.set_router_mgmt_addr(r, spec.addr_a);
  }
}

RouterId HandTopo::backbone(Asn asn, int city_index) const {
  for (RouterId r : topo_.routers_of(asn, city(city_index))) {
    if (topo_.router(r).role == RouterRole::kBackbone) return r;
  }
  return RouterId{};
}

std::vector<LinkId> HandTopo::connect(Asn a, Asn b, RelType rel_a_to_b,
                                      const std::vector<int>& city_indices,
                                      bool number_from_b,
                                      double capacity_mbps) {
  switch (rel_a_to_b) {
    case RelType::kCustomer:
      topo_.relationships().add_customer(a, b);
      break;
    case RelType::kProvider:
      topo_.relationships().add_customer(b, a);
      break;
    case RelType::kPeer:
      topo_.relationships().add_peer(a, b);
      break;
    case RelType::kNone:
      break;
  }
  std::vector<LinkId> out;
  for (int i : city_indices) {
    RouterId ra = topo_.add_router(a, city(i), RouterRole::kBorder,
                                   "edge" + std::to_string(i));
    RouterId rb = topo_.add_router(b, city(i), RouterRole::kBorder,
                                   "edge" + std::to_string(i));
    // Connect borders to their backbones.
    for (auto [asn, border] : {std::pair{a, ra}, std::pair{b, rb}}) {
      RouterId bb;
      for (RouterId r : topo_.routers_of(asn, city(i))) {
        if (topo_.router(r).role == RouterRole::kBackbone) bb = r;
      }
      topo::Topology::LinkSpec spec;
      spec.router_a = border;
      spec.router_b = bb;
      spec.kind = LinkKind::kInternal;
      spec.capacity_mbps = 100000.0;
      spec.prop_delay_ms = 0.2;
      spec.addr_a = next_infra(asn);
      spec.addr_b = next_infra(asn);
      topo_.add_link(spec);
      topo_.set_router_mgmt_addr(border, spec.addr_a);
    }
    // The interdomain link itself.
    Asn owner = number_from_b ? b : a;
    topo::Topology::LinkSpec spec;
    spec.router_a = ra;
    spec.router_b = rb;
    spec.kind = LinkKind::kInterdomain;
    spec.capacity_mbps = capacity_mbps;
    spec.prop_delay_ms = 0.3;
    spec.addr_a = next_infra(owner);
    spec.addr_b = next_infra(owner);
    spec.addr_owner_a = owner;
    spec.addr_owner_b = owner;
    out.push_back(topo_.add_link(spec));
  }
  return out;
}

std::uint32_t HandTopo::add_host(Asn asn, int city_index, HostKind kind,
                                 const std::string& label) {
  topo::Host h;
  h.kind = kind;
  h.asn = asn;
  h.city = city(city_index);
  h.addr = next_host_addr(asn);
  h.label = label;
  // Attach to access router for clients, hosting router otherwise;
  // fall back to the backbone.
  RouterRole want = kind == HostKind::kClient ? RouterRole::kAccess
                                              : RouterRole::kHosting;
  topo::RouterId attach;
  for (topo::RouterId r : topo_.routers_of(asn, city(city_index))) {
    if (topo_.router(r).role == want) attach = r;
    if (!attach.valid() && topo_.router(r).role == RouterRole::kBackbone) {
      attach = r;
    }
  }
  if (!attach.valid()) {
    for (topo::RouterId r : topo_.routers_of(asn)) {
      attach = r;
      break;
    }
  }
  h.attachment = attach;
  if (kind != HostKind::kClient) {
    h.tier = topo::ServiceTier{10000, 10000};
    h.access_delay_ms = 0.3;
  }
  return topo_.add_host(h);
}

const gen::World& small_world() {
  static const gen::World world = [] {
    gen::GeneratorConfig cfg = gen::GeneratorConfig::small();
    cfg.seed = 7;
    return gen::generate_world(cfg);
  }();
  return world;
}

const gen::World& tiny_world() {
  static const gen::World world = [] {
    gen::GeneratorConfig cfg = gen::GeneratorConfig::tiny();
    cfg.seed = 7;
    return gen::generate_world(cfg);
  }();
  return world;
}

}  // namespace netcong::test
