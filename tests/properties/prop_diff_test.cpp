// Gtest wrapper for the "diff" property family (differential determinism):
// the same campaign run across worker counts, path-cache settings, fault
// severities, and instrumentation toggles must produce bit-identical
// output fingerprints — for random worlds, not just the blessed fixture.

#include <gtest/gtest.h>

#include "check/properties.h"

namespace netcong::check {
namespace {

std::vector<const Property*> family_properties(const char* family) {
  std::vector<const Property*> out;
  for (const Property& p : all_properties()) {
    if (p.family == family) out.push_back(&p);
  }
  return out;
}

class DiffProperty : public ::testing::TestWithParam<const Property*> {};

TEST_P(DiffProperty, Holds) {
  util::pbt::Config cfg;
  cfg.iterations = 0;  // the property's bounded default budget
  util::pbt::CheckResult result = run_property(*GetParam(), cfg);
  EXPECT_TRUE(result.ok) << result.report;
}

std::string test_name(const ::testing::TestParamInfo<const Property*>& info) {
  std::string name = info.param->name;
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Registry, DiffProperty,
                         ::testing::ValuesIn(family_properties("diff")),
                         test_name);

TEST(DiffFamily, RegistryHasEnoughProperties) {
  EXPECT_GE(family_properties("diff").size(), 3u);
}

// The whole registry meets the advertised floor: at least 12 distinct
// runnable properties across the three families.
TEST(DiffFamily, FullRegistryFloor) {
  EXPECT_GE(all_properties().size(), 12u);
  for (const Property& p : all_properties()) {
    EXPECT_NE(find_property(p.name), nullptr) << p.name;
    EXPECT_TRUE(static_cast<bool>(p.run)) << p.name;
  }
}

}  // namespace
}  // namespace netcong::check
