file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_diurnal.dir/bench_fig5_diurnal.cpp.o"
  "CMakeFiles/bench_fig5_diurnal.dir/bench_fig5_diurnal.cpp.o.d"
  "CMakeFiles/bench_fig5_diurnal.dir/common.cpp.o"
  "CMakeFiles/bench_fig5_diurnal.dir/common.cpp.o.d"
  "bench_fig5_diurnal"
  "bench_fig5_diurnal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
