// The framed socket front-end (DESIGN.md §12): a loopback listener feeding
// a live IngestService. The contracts under test — every valid frame
// becomes exactly one submit, every malformed byte sequence gets a typed
// rejection (never a crash), the conserved accounting
// frames_ok = events_submitted + events_dropped holds whatever the client
// does, and the deterministic short-read / mid-frame-disconnect faults
// exercise reassembly and truncation classification.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "gen/workload.h"
#include "helpers.h"
#include "infer/datasets.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "serve/codec.h"
#include "serve/event.h"
#include "serve/net.h"
#include "serve/service.h"
#include "sim/faults.h"
#include "sim/throughput.h"

namespace netcong::serve {
namespace {

struct Stack {
  explicit Stack(const gen::World& w)
      : world(w),
        bgp(*w.topo),
        fwd(*w.topo, bgp),
        model(*w.topo, *w.traffic),
        mlab("mlab", *w.topo, w.mlab_servers),
        ip2as(*w.topo),
        orgs(*w.topo) {}
  const gen::World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  measure::Platform mlab;
  infer::Ip2As ip2as;
  infer::OrgMap orgs;
};

Stack& stack() {
  static Stack s(test::tiny_world());
  return s;
}

const std::vector<IngestEvent>& event_log() {
  static const std::vector<IngestEvent> log = [] {
    Stack& s = stack();
    std::vector<gen::TestRequest> schedule;
    for (int round = 0; round < 2; ++round) {
      for (std::size_t i = 0; i < s.world.clients.size(); ++i) {
        schedule.push_back(
            {s.world.clients[i],
             10.0 + round * 0.05 + static_cast<double>(i) * 0.003});
      }
    }
    measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab,
                                  measure::CampaignConfig{});
    util::Rng rng(20170402);
    return event_log_from(campaign.run(schedule, rng));
  }();
  return log;
}

ServeConfig block_config() {
  ServeConfig cfg;
  cfg.shards = 2;
  cfg.queue_capacity = 64;
  cfg.policy = OverflowPolicy::kBlock;
  return cfg;
}

// Polls until the predicate holds or a generous deadline passes — the
// server side is asynchronous, so counters trail the client's sends.
template <typename Pred>
bool eventually(Pred&& pred, int timeout_ms = 10000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(NetRoundTripTest, EveryFrameBecomesOneSubmit) {
  Stack& s = stack();
  const auto& log = event_log();
  ASSERT_FALSE(log.empty());

  IngestService svc(s.ip2as, s.orgs, block_config());
  svc.start();
  FrameListener listener(svc, NetConfig{});
  ASSERT_TRUE(listener.start(0).ok());
  ASSERT_NE(listener.port(), 0);

  FrameClient client;
  ASSERT_TRUE(client.connect("localhost", listener.port()).ok());
  for (const IngestEvent& ev : log) {
    ASSERT_TRUE(client.send(ev).ok());
  }
  EXPECT_EQ(client.events_sent(), log.size());
  client.close();

  ASSERT_TRUE(eventually([&] {
    return listener.counters().events_submitted == log.size();
  }));
  NetCounters net = listener.counters();
  EXPECT_EQ(net.connections_accepted, 1u);
  EXPECT_EQ(net.frames_ok, log.size());
  EXPECT_EQ(net.frames_rejected(), 0u);
  EXPECT_EQ(net.events_dropped, 0u);
  EXPECT_TRUE(net.consistent());
  listener.stop();

  // The socket path reaches the exact state direct submission reaches.
  ServiceSnapshot via_socket = svc.drain_and_stop();
  EXPECT_EQ(via_socket.events_consumed, log.size());
  IngestService direct(s.ip2as, s.orgs, block_config());
  direct.start();
  for (const IngestEvent& ev : log) ASSERT_TRUE(direct.submit(ev));
  EXPECT_EQ(direct.drain_and_stop().fingerprint, via_socket.fingerprint);
}

TEST(NetRoundTripTest, ShortReadFaultStillDeliversEverything) {
  Stack& s = stack();
  const auto& log = event_log();
  std::size_t n = std::min<std::size_t>(log.size(), 40);

  sim::FaultConfig fcfg;
  fcfg.enabled = true;
  fcfg.net_short_read_prob = 1.0;  // every connection reads 1-3 bytes a time
  sim::FaultInjector inj(fcfg, 99);

  IngestService svc(s.ip2as, s.orgs, block_config());
  svc.start();
  NetConfig ncfg;
  ncfg.faults = &inj;
  FrameListener listener(svc, ncfg);
  ASSERT_TRUE(listener.start(0).ok());

  FrameClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", listener.port()).ok());
  for (std::size_t i = 0; i < n; ++i) ASSERT_TRUE(client.send(log[i]).ok());
  client.close();

  // Reassembly across every possible split point must lose nothing.
  ASSERT_TRUE(eventually(
      [&] { return listener.counters().events_submitted == n; }, 30000));
  NetCounters net = listener.counters();
  EXPECT_EQ(net.frames_ok, n);
  EXPECT_EQ(net.frames_rejected(), 0u);
  EXPECT_TRUE(net.consistent());
  listener.stop();
  svc.stop();
}

TEST(NetRejectionTest, GarbageGetsTypedCountsNeverACrash) {
  Stack& s = stack();
  IngestService svc(s.ip2as, s.orgs, block_config());
  svc.start();
  FrameListener listener(svc, NetConfig{});
  ASSERT_TRUE(listener.start(0).ok());

  std::vector<std::uint8_t> good;
  append_frame(event_log().front(), good);

  // Each damaged buffer goes over a fresh connection (the listener closes
  // a connection after its first bad frame — no resync on a byte stream).
  auto send_bytes = [&](const std::vector<std::uint8_t>& bytes) {
    FrameClient c;
    ASSERT_TRUE(c.connect("127.0.0.1", listener.port()).ok());
    ASSERT_TRUE(c.send_raw(bytes.data(), bytes.size()).ok());
    c.close();
  };

  std::vector<std::uint8_t> bad_version = good;
  bad_version[8] = 42;
  send_bytes(bad_version);
  ASSERT_TRUE(eventually(
      [&] { return listener.counters().rejected_bad_version == 1; }));

  std::vector<std::uint8_t> bad_kind = good;
  bad_kind[9] = 9;
  send_bytes(bad_kind);
  ASSERT_TRUE(
      eventually([&] { return listener.counters().rejected_bad_kind == 1; }));

  std::vector<std::uint8_t> oversize = good;
  std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(oversize.data(), &huge, sizeof(huge));
  send_bytes(oversize);
  ASSERT_TRUE(
      eventually([&] { return listener.counters().rejected_oversize == 1; }));

  std::vector<std::uint8_t> bad_crc = good;
  bad_crc[kFrameHeaderBytes] ^= 0x10;
  send_bytes(bad_crc);
  ASSERT_TRUE(eventually(
      [&] { return listener.counters().rejected_bad_checksum == 1; }));

  // Intact frame, undecodable payload: CRC recomputed so it passes parse.
  std::vector<std::uint8_t> bad_payload(kFrameHeaderBytes);
  std::uint32_t len = 4;
  std::memcpy(bad_payload.data(), &len, sizeof(len));
  bad_payload[8] = kFrameVersion;
  bad_payload[9] = 0;
  bad_payload.insert(bad_payload.end(), {0xff, 0xff, 0xff, 0xff});
  std::uint32_t crc = crc32c(bad_payload.data() + 8, 4 + 4);
  std::memcpy(bad_payload.data() + 4, &crc, sizeof(crc));
  send_bytes(bad_payload);
  ASSERT_TRUE(eventually(
      [&] { return listener.counters().rejected_bad_payload == 1; }));

  // A valid frame that simply stops mid-way: EOF with leftover bytes.
  std::vector<std::uint8_t> stub(good.begin(),
                                 good.begin() + good.size() / 2);
  send_bytes(stub);
  ASSERT_TRUE(
      eventually([&] { return listener.counters().rejected_truncated == 1; }));

  NetCounters net = listener.counters();
  EXPECT_EQ(net.frames_ok, 0u);
  EXPECT_EQ(net.frames_rejected(), 6u);
  EXPECT_EQ(net.frames_received(), 6u);
  EXPECT_TRUE(net.consistent());
  EXPECT_EQ(net.events_submitted, 0u);

  // The daemon is still alive and serving after all of it.
  FrameClient ok;
  ASSERT_TRUE(ok.connect("127.0.0.1", listener.port()).ok());
  ASSERT_TRUE(ok.send(event_log().front()).ok());
  ok.close();
  ASSERT_TRUE(
      eventually([&] { return listener.counters().events_submitted == 1; }));
  listener.stop();
  svc.stop();
}

TEST(NetRejectionTest, InjectedMidFrameDisconnectIsOneTruncatedFrame) {
  Stack& s = stack();
  IngestService svc(s.ip2as, s.orgs, block_config());
  svc.start();
  FrameListener listener(svc, NetConfig{});
  ASSERT_TRUE(listener.start(0).ok());

  sim::FaultConfig fcfg;
  fcfg.enabled = true;
  fcfg.net_disconnect_prob = 1.0;
  sim::FaultInjector inj(fcfg, 1234);
  FrameClient client(&inj);
  ASSERT_TRUE(client.connect("127.0.0.1", listener.port()).ok());
  util::Status st = client.send(event_log().front());
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(client.events_sent(), 0u);

  ASSERT_TRUE(
      eventually([&] { return listener.counters().rejected_truncated == 1; }));
  NetCounters net = listener.counters();
  EXPECT_EQ(net.frames_ok, 0u);
  EXPECT_TRUE(net.consistent());
  listener.stop();
  svc.stop();
}

TEST(NetLimitsTest, ConnectionCapRejectsTheOverflow) {
  Stack& s = stack();
  IngestService svc(s.ip2as, s.orgs, block_config());
  svc.start();
  NetConfig ncfg;
  ncfg.max_connections = 1;
  FrameListener listener(svc, ncfg);
  ASSERT_TRUE(listener.start(0).ok());

  FrameClient holder;
  ASSERT_TRUE(holder.connect("127.0.0.1", listener.port()).ok());
  // Prove the holder's connection is being handled before racing a second
  // one against the cap.
  ASSERT_TRUE(holder.send(event_log().front()).ok());
  ASSERT_TRUE(
      eventually([&] { return listener.counters().events_submitted == 1; }));

  FrameClient overflow;
  ASSERT_TRUE(overflow.connect("127.0.0.1", listener.port()).ok());
  ASSERT_TRUE(eventually(
      [&] { return listener.counters().connections_rejected_cap == 1; }));
  overflow.close();
  holder.close();
  NetCounters net = listener.counters();
  EXPECT_EQ(net.connections_accepted, 1u);
  EXPECT_TRUE(net.consistent());
  listener.stop();
  svc.stop();
}

TEST(NetLimitsTest, IdleConnectionTimesOut) {
  Stack& s = stack();
  IngestService svc(s.ip2as, s.orgs, block_config());
  svc.start();
  NetConfig ncfg;
  ncfg.read_timeout_s = 0.1;
  FrameListener listener(svc, ncfg);
  ASSERT_TRUE(listener.start(0).ok());

  FrameClient idle;
  ASSERT_TRUE(idle.connect("127.0.0.1", listener.port()).ok());
  ASSERT_TRUE(eventually(
      [&] { return listener.counters().connections_timed_out == 1; }));
  idle.close();
  listener.stop();
  svc.stop();
}

TEST(NetLimitsTest, ClientErrorsAreStatusesNotCrashes) {
  FrameClient c;
  EXPECT_FALSE(c.connect("not-a-host", 1).ok());
  EXPECT_FALSE(c.send(event_log().front()).ok());  // never connected
  std::uint8_t byte = 0;
  EXPECT_FALSE(c.send_raw(&byte, 1).ok());
  c.close();  // idempotent on a never-opened client

  Stack& s = stack();
  IngestService svc(s.ip2as, s.orgs, block_config());
  svc.start();
  FrameListener listener(svc, NetConfig{});
  ASSERT_TRUE(listener.start(0).ok());
  EXPECT_FALSE(listener.start(0).ok());  // already running
  listener.stop();
  listener.stop();  // idempotent
  svc.stop();
}

}  // namespace
}  // namespace netcong::serve
