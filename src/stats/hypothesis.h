#pragma once

// Two-sample hypothesis tests used to decide whether peak and off-peak
// throughput samples plausibly come from the same distribution — the
// statistical-significance question raised in paper Section 6.1.

#include <vector>

namespace netcong::stats {

struct TestResult {
  double statistic = 0.0;  // U for Mann-Whitney, t for Welch
  double z = 0.0;          // normal approximation of the statistic
  double p_value = 0.0;    // two-sided
  bool significant_at(double alpha) const { return p_value < alpha; }
};

// Mann-Whitney U (Wilcoxon rank-sum) with tie correction and normal
// approximation. Appropriate for the skewed throughput distributions of
// crowdsourced tests. Requires both samples non-empty.
TestResult mann_whitney_u(const std::vector<double>& a,
                          const std::vector<double>& b);

// Welch's t-test (unequal variances). Requires both samples of size >= 2.
TestResult welch_t(const std::vector<double>& a, const std::vector<double>& b);

// Standard normal CDF.
double normal_cdf(double z);

// Cliff's delta effect size in [-1, 1]: P(a > b) - P(a < b).
double cliffs_delta(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace netcong::stats
