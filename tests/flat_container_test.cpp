// Unit tests for util::FlatMap / util::FlatSet (open-addressing robin-hood
// tables with canonical layout) and util::Arena (bump allocator backing the
// columnar traceroute corpus). The property-based cross-check against
// std::unordered_map lives in check/util_properties.cpp; these pin the
// specific contracts the hot paths rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/arena.h"
#include "util/flat_map.h"
#include "util/flat_set.h"

namespace {

using netcong::util::Arena;
using netcong::util::FlatMap;
using netcong::util::FlatSet;

TEST(FlatMap, BasicInsertLookupErase) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.contains(7));
  EXPECT_EQ(m.find(7), m.end());

  m[7] = 70;
  m[9] = 90;
  auto [it, fresh] = m.try_emplace(7, 999);
  EXPECT_FALSE(fresh);  // existing key: value untouched
  EXPECT_EQ(it->second, 70);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(9), 90);
  EXPECT_EQ(m.count(9), 1u);
  EXPECT_EQ(m.count(8), 0u);
  EXPECT_THROW(m.at(8), std::out_of_range);

  m.assign(9, 91);  // insert-or-assign overwrites
  EXPECT_EQ(m.at(9), 91);
  m.insert({11, 110});
  EXPECT_EQ(m.at(11), 110);

  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_FALSE(m.contains(7));
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, GrowthKeepsEverything) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i) m[i * 3 + 1] = i;
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    auto it = m.find(i * 3 + 1);
    ASSERT_NE(it, m.end()) << "key " << i * 3 + 1;
    EXPECT_EQ(it->second, i);
  }
  EXPECT_FALSE(m.contains(2));  // only ≡1 (mod 3) keys inserted
}

TEST(FlatMap, CanonicalLayoutIsInsertionOrderIndependent) {
  // Same key set in forward, reverse, and interleaved order: the physical
  // layout — and therefore iteration order — must come out identical. This
  // is what makes concurrent cache fills reproducible.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    keys.push_back(netcong::util::splitmix64(i));
  }
  FlatMap<std::uint64_t, int> fwd, rev, mix;
  for (std::size_t i = 0; i < keys.size(); ++i) fwd[keys[i]] = 1;
  for (std::size_t i = keys.size(); i-- > 0;) rev[keys[i]] = 1;
  for (std::size_t i = 0; i < keys.size(); i += 2) mix[keys[i]] = 1;
  for (std::size_t i = 1; i < keys.size(); i += 2) mix[keys[i]] = 1;

  ASSERT_EQ(fwd.capacity(), rev.capacity());
  ASSERT_EQ(fwd.capacity(), mix.capacity());
  auto a = fwd.begin(), b = rev.begin(), c = mix.begin();
  for (; a != fwd.end(); ++a, ++b, ++c) {
    EXPECT_EQ(a->first, b->first);
    EXPECT_EQ(a->first, c->first);
  }
  EXPECT_EQ(b, rev.end());
  EXPECT_EQ(c, mix.end());
}

TEST(FlatMap, EraseBackwardShiftPreservesResidents) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 5000;
  for (std::uint64_t i = 0; i < kN; ++i) m[i] = i * 10;
  for (std::uint64_t i = 0; i < kN; i += 2) EXPECT_EQ(m.erase(i), 1u);
  EXPECT_EQ(m.size(), kN / 2);
  for (std::uint64_t i = 0; i < kN; ++i) {
    if (i % 2 == 0) {
      EXPECT_FALSE(m.contains(i));
    } else {
      ASSERT_TRUE(m.contains(i));
      EXPECT_EQ(m.at(i), i * 10);
    }
  }
  // Erase-and-refill at the same keys: table stays consistent (no
  // tombstone accumulation to degrade probing).
  for (std::uint64_t i = 0; i < kN; i += 2) m[i] = i;
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t i = 0; i < kN; i += 2) EXPECT_EQ(m.at(i), i);
}

TEST(FlatMap, IteratorEraseDrainsTable) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 200; ++i) m[i] = 1;
  std::size_t seen = 0;
  for (auto it = m.begin(); it != m.end();) {
    it = m.erase(it);
    ++seen;
  }
  EXPECT_EQ(seen, 200u);
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, EqualityIsLayoutIndependent) {
  FlatMap<std::uint64_t, int> a, b;
  for (std::uint64_t i = 0; i < 500; ++i) a[i] = static_cast<int>(i);
  b.reserve(4096);  // different capacity, same contents
  for (std::uint64_t i = 500; i-- > 0;) b[i] = static_cast<int>(i);
  EXPECT_EQ(a, b);
  b[123] = -1;
  EXPECT_NE(a, b);
  b[123] = 123;
  b[9999] = 0;
  EXPECT_NE(a, b);  // extra key
}

TEST(FlatMap, ResidentKeyAccessNeverRehashes) {
  // Access to a key already in the table must not grow it, even at the
  // load-factor threshold — callers hold mapped references while touching
  // other resident keys (e.g. the tracer-busy table in measure::run).
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 12; ++i) m[i] = static_cast<int>(i);
  ASSERT_EQ(m.capacity(), 16u);  // 12/16 = load 0.75: next insert grows
  int* ref = &m[5];
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 12; ++i) {
      EXPECT_EQ(m[i], static_cast<int>(i));
    }
  }
  EXPECT_EQ(m.capacity(), 16u);
  EXPECT_EQ(ref, &m[5]);
  m[12] = 12;  // a genuinely fresh key does grow
  EXPECT_GT(m.capacity(), 16u);
}

TEST(FlatMap, StringKeys) {
  FlatMap<std::string, int> m;
  m["comcast"] = 1;
  m["verizon"] = 2;
  m[""] = 3;
  EXPECT_EQ(m.at("comcast"), 1);
  EXPECT_EQ(m.at(""), 3);
  EXPECT_FALSE(m.contains("cox"));
  EXPECT_EQ(m.erase("verizon"), 1u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatSet, InsertContainsErase) {
  FlatSet<std::uint32_t> s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(42).second);
  EXPECT_FALSE(s.insert(42).second);  // duplicate
  s.insert(7);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(42));
  EXPECT_EQ(s.count(7), 1u);
  EXPECT_FALSE(s.contains(8));
  EXPECT_EQ(s.erase(42), 1u);
  EXPECT_EQ(s.erase(42), 0u);
  std::vector<std::uint32_t> out;
  for (std::uint32_t v : s) out.push_back(v);
  EXPECT_EQ(out, std::vector<std::uint32_t>{7});
}

TEST(Arena, AlignmentForEveryPowerOfTwo) {
  Arena arena(128);  // tiny chunks force mid-test chunk rollover
  for (int round = 0; round < 50; ++round) {
    for (std::size_t align = 1; align <= Arena::kMaxAlign; align <<= 1) {
      void* p = arena.allocate(align + 3, align);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align " << align << " round " << round;
    }
  }
}

TEST(Arena, AppendReturnsStableCopies) {
  Arena arena(256);
  std::vector<const std::uint64_t*> spans;
  std::vector<std::vector<std::uint64_t>> expect;
  for (std::uint64_t i = 0; i < 200; ++i) {
    std::vector<std::uint64_t> src(i % 17, i);
    spans.push_back(arena.append(src.data(), src.size()));
    expect.push_back(std::move(src));
  }
  // Earlier spans stay intact while later appends roll new chunks.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = 0; j < expect[i].size(); ++j) {
      EXPECT_EQ(spans[i][j], expect[i][j]) << "span " << i;
    }
  }
}

TEST(Arena, BytesAccountingAndReset) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  arena.alloc_array<std::uint32_t>(100);
  EXPECT_GE(arena.bytes_used(), 400u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
  std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_LE(arena.bytes_reserved(), reserved);  // keeps at most one chunk
  // The recycled arena allocates into the retained chunk.
  void* p = arena.allocate(64, 8);
  EXPECT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_used(), 64u);
}

TEST(Arena, OversizedAllocationGetsOwnChunk) {
  Arena arena(64);
  auto* big = arena.alloc_array<std::uint8_t>(1u << 20);  // 1 MiB > chunk
  big[0] = 1;
  big[(1u << 20) - 1] = 2;
  EXPECT_EQ(big[0], 1);
  EXPECT_EQ(big[(1u << 20) - 1], 2);
  EXPECT_GE(arena.bytes_reserved(), 1u << 20);
  auto* zero = arena.append<std::uint16_t>(nullptr, 0);  // empty append ok
  EXPECT_NE(zero, nullptr);
}

}  // namespace
