file(REMOVE_RECURSE
  "CMakeFiles/netcong_sim.dir/diurnal.cpp.o"
  "CMakeFiles/netcong_sim.dir/diurnal.cpp.o.d"
  "CMakeFiles/netcong_sim.dir/packet/dumbbell.cpp.o"
  "CMakeFiles/netcong_sim.dir/packet/dumbbell.cpp.o.d"
  "CMakeFiles/netcong_sim.dir/packet/event_queue.cpp.o"
  "CMakeFiles/netcong_sim.dir/packet/event_queue.cpp.o.d"
  "CMakeFiles/netcong_sim.dir/packet/queue.cpp.o"
  "CMakeFiles/netcong_sim.dir/packet/queue.cpp.o.d"
  "CMakeFiles/netcong_sim.dir/packet/tcp.cpp.o"
  "CMakeFiles/netcong_sim.dir/packet/tcp.cpp.o.d"
  "CMakeFiles/netcong_sim.dir/throughput.cpp.o"
  "CMakeFiles/netcong_sim.dir/throughput.cpp.o.d"
  "CMakeFiles/netcong_sim.dir/traffic.cpp.o"
  "CMakeFiles/netcong_sim.dir/traffic.cpp.o.d"
  "libnetcong_sim.a"
  "libnetcong_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcong_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
