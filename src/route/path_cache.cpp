#include "route/path_cache.h"

#include <algorithm>
#include <mutex>

#include "obs/metrics.h"

namespace netcong::route {

namespace {
// Process-wide metric handles (registered once; near-free while the
// registry is disabled). All PathCache instances feed the same counters.
struct CacheMetrics {
  obs::Counter hits = obs::MetricsRegistry::global().counter("path_cache.hits");
  obs::Counter misses =
      obs::MetricsRegistry::global().counter("path_cache.misses");
  obs::Counter evictions =
      obs::MetricsRegistry::global().counter("path_cache.evictions");
};
const CacheMetrics& cache_metrics() {
  static const CacheMetrics m;
  return m;
}
}  // namespace

PathCache::PathCache(const Forwarder& fwd, std::size_t num_shards,
                     std::size_t max_entries)
    : fwd_(&fwd) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (max_entries > 0) {
    max_per_shard_ = std::max<std::size_t>(1, max_entries / num_shards);
  }
}

FlowKey PathCache::ecmp_key(topo::IpAddr src, topo::IpAddr dst,
                            std::uint16_t src_port, int bucket) {
  FlowKey key;
  key.src = src;
  key.dst = dst;
  key.src_port = src_port;
  key.dst_port =
      static_cast<std::uint16_t>(kEphemeralPortBase + std::max(bucket, 0));
  key.proto = 6;
  return key;
}

PathCache::Key PathCache::make_key(std::uint32_t src_host, topo::IpAddr dst,
                                   const FlowKey& key) {
  Key k;
  k.a = (static_cast<std::uint64_t>(src_host) << 32) | dst.value;
  k.b = (static_cast<std::uint64_t>(key.src.value) << 32) | key.dst.value;
  k.c = (static_cast<std::uint64_t>(key.src_port) << 32) |
        (static_cast<std::uint64_t>(key.dst_port) << 16) | key.proto;
  return k;
}

std::size_t PathCache::KeyHash::operator()(const Key& k) const {
  // Full splitmix64 finalizer at each combining step (the shared mixer in
  // util/flat_map.h): each word avalanches before it touches the next, so
  // structured keys (sequential hosts, port constants) spread uniformly in
  // a power-of-two slot space.
  return static_cast<std::size_t>(util::splitmix64(
      k.a ^ util::splitmix64(k.b ^ util::splitmix64(k.c))));
}

PathCache::Shard& PathCache::shard_for(const Key& k) const {
  return *shards_[KeyHash{}(k) % shards_.size()];
}

RouterPath PathCache::path(std::uint32_t src_host, topo::IpAddr dst,
                           const FlowKey& key) const {
  return *path_shared(src_host, dst, key);
}

std::shared_ptr<const RouterPath> PathCache::path_shared(
    std::uint32_t src_host, topo::IpAddr dst, const FlowKey& key) const {
  Key k = make_key(src_host, dst, key);
  Shard& shard = shard_for(k);
  {
    std::shared_lock<std::shared_mutex> lk(shard.mu);
    auto it = shard.map.find(k);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      cache_metrics().hits.inc();
      return it->second;
    }
  }
  // Compute outside any lock; concurrent misses on the same key compute the
  // same value (the path is a pure function of the arguments).
  auto p = std::make_shared<const RouterPath>(fwd_->path(src_host, dst, key));
  misses_.fetch_add(1, std::memory_order_relaxed);
  cache_metrics().misses.inc();
  {
    std::unique_lock<std::shared_mutex> lk(shard.mu);
    shard.map.try_emplace(k, p);
    while (max_per_shard_ > 0 && shard.map.size() > max_per_shard_) {
      // Deterministic victim: the entry in the lowest occupied probe slot
      // of the canonical layout (skipping the entry just inserted).
      auto victim = shard.map.begin();
      if (victim != shard.map.end() && victim->first == k) ++victim;
      if (victim == shard.map.end()) break;
      shard.map.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      cache_metrics().evictions.inc();
    }
  }
  return p;
}

PathCache::Stats PathCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

std::size_t PathCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lk(shard->mu);
    n += shard->map.size();
  }
  return n;
}

void PathCache::clear() {
  for (const auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lk(shard->mu);
    shard->map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace netcong::route
