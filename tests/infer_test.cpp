#include <gtest/gtest.h>

#include <set>

#include "gen/workload.h"
#include "helpers.h"
#include "infer/alias.h"
#include "infer/bdrmap.h"
#include "infer/datasets.h"
#include "infer/mapit.h"
#include "measure/ark.h"
#include "measure/matching.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"

namespace netcong::infer {
namespace {

using gen::World;

struct Stack {
  explicit Stack(const World& w)
      : world(w),
        bgp(*w.topo),
        fwd(*w.topo, bgp),
        model(*w.topo, *w.traffic),
        ip2as(*w.topo),
        orgs(*w.topo) {}
  const World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  Ip2As ip2as;
  OrgMap orgs;
};

Stack& tiny_stack() {
  static Stack s(test::tiny_world());
  return s;
}

// A corpus of server->client traceroutes across the tiny world.
const std::vector<measure::TracerouteRecord>& shared_corpus() {
  static const std::vector<measure::TracerouteRecord> corpus = [] {
    Stack& s = tiny_stack();
    util::Rng rng(17);
    measure::TracerouteOptions opt;
    std::vector<measure::TracerouteRecord> out;
    for (std::uint32_t server : s.world.mlab_servers) {
      for (std::size_t i = 0; i < s.world.clients.size(); i += 2) {
        out.push_back(measure::run_traceroute(
            *s.world.topo, s.fwd, server,
            s.world.topo->host(s.world.clients[i]).addr, 12.0, opt, rng));
      }
    }
    return out;
  }();
  return corpus;
}

TEST(Ip2As, ResolvesAnnouncedSpace) {
  Stack& s = tiny_stack();
  for (std::uint32_t c : s.world.clients) {
    auto r = s.ip2as.lookup(s.world.topo->host(c).addr);
    EXPECT_EQ(r.kind, Ip2As::Kind::kAs);
  }
  EXPECT_EQ(s.ip2as.lookup(topo::IpAddr(0, 0, 0, 1)).kind,
            Ip2As::Kind::kUnknown);
}

TEST(Ip2As, FlagsIxpSpace) {
  Stack& s = tiny_stack();
  ASSERT_FALSE(s.world.topo->ixp_prefixes().empty());
  topo::IpAddr in_ixp = s.world.topo->ixp_prefixes()[0].nth(5);
  EXPECT_TRUE(s.ip2as.is_ixp(in_ixp));
  EXPECT_EQ(s.ip2as.origin(in_ixp), 0u);
}

TEST(OrgMap, GroupsSiblings) {
  Stack& s = tiny_stack();
  const auto& comcast = s.world.isp_asns.at("Comcast");
  ASSERT_GE(comcast.size(), 2u);
  EXPECT_TRUE(s.orgs.same_org(comcast[0], comcast[1]));
  topo::Asn att = s.world.primary_asn("AT&T");
  EXPECT_FALSE(s.orgs.same_org(comcast[0], att));
  EXPECT_EQ(s.orgs.org_of(999999), 0u);
}

TEST(MapIt, HighPrecisionOnGeneratedCorpus) {
  Stack& s = tiny_stack();
  auto result = run_mapit(shared_corpus(), s.ip2as, s.orgs);
  ASSERT_GT(result.crossings.size(), 10u);
  auto acc = evaluate_mapit(result, *s.world.topo, s.orgs);
  EXPECT_GT(acc.crossings_checked, 10u);
  // The MAP-IT paper reports >90% accuracy; our reimplementation should be
  // in the same regime on a clean corpus, counting border-router-adjacent
  // attributions (the one-hop ambiguity the paper warns about) as correct.
  EXPECT_GT(acc.precision(), 0.90);
  EXPECT_GT(acc.exact_fraction(), 0.5);
}

TEST(MapIt, ReassignsForeignNumberedInterfaces) {
  Stack& s = tiny_stack();
  auto result = run_mapit(shared_corpus(), s.ip2as, s.orgs);
  // The generator numbers many interdomain links from one side's space, so
  // the multipass phase must have corrected some interfaces.
  EXPECT_GT(result.reassignments, 0);
  EXPECT_GT(result.passes_run, 1);
}

TEST(MapIt, CrossingsHaveDistinctOrgs) {
  Stack& s = tiny_stack();
  auto result = run_mapit(shared_corpus(), s.ip2as, s.orgs);
  for (const auto& c : result.crossings) {
    EXPECT_FALSE(s.orgs.same_org(c.near_as, c.far_as));
    EXPECT_GT(c.observations, 0);
  }
}

TEST(MapIt, EmptyCorpus) {
  Stack& s = tiny_stack();
  auto result = run_mapit({}, s.ip2as, s.orgs);
  EXPECT_TRUE(result.crossings.empty());
}

TEST(Alias, DeterministicAndGroupsByRouter) {
  Stack& s = tiny_stack();
  AliasResolver res(*s.world.topo, 1.0, 42);
  // Perfect resolution: two interfaces of the same router share a group.
  const auto& routers = s.world.topo->routers();
  int checked = 0;
  for (const auto& r : routers) {
    if (r.interfaces.size() < 2) continue;
    auto a = s.world.topo->iface(r.interfaces[0]).addr;
    auto b = s.world.topo->iface(r.interfaces[1]).addr;
    EXPECT_EQ(res.group(a), res.group(b));
    EXPECT_EQ(res.group(a), res.group(a));  // deterministic
    if (++checked > 20) break;
  }
  ASSERT_GT(checked, 5);
}

TEST(Alias, ZeroSuccessGivesSingletons) {
  Stack& s = tiny_stack();
  AliasResolver res(*s.world.topo, 0.0, 42);
  std::set<std::uint64_t> groups;
  int n = 0;
  for (const auto& i : s.world.topo->interfaces()) {
    groups.insert(res.group(i.addr));
    if (++n >= 100) break;
  }
  EXPECT_EQ(groups.size(), 100u);
}

TEST(Bdrmap, DiscoversNeighborsOfVpNetwork) {
  Stack& s = tiny_stack();
  std::uint32_t vp = s.world.ark_vps[0];
  topo::Asn vp_as = s.world.topo->host(vp).asn;

  util::Rng rng(31);
  measure::ArkCampaignOptions opt;
  auto corpus = measure::ark_full_prefix_campaign(s.world, s.fwd, vp, opt, rng);

  AliasResolver aliases(*s.world.topo, 0.9, 42);
  auto result = run_bdrmap(corpus, vp_as, s.ip2as, s.orgs,
                           s.world.topo->relationships(), aliases);
  auto counts = result.counts();
  ASSERT_GT(counts.as_total, 0);
  EXPECT_GE(counts.router_total, counts.as_total);

  // Recall vs ground truth: neighbors that the VP's org truly connects to.
  std::set<topo::Asn> truth;
  for (topo::Asn sib : s.world.topo->siblings_of(vp_as)) {
    for (const auto& [nbr, rel] :
         s.world.topo->relationships().neighbors(sib)) {
      if (!s.orgs.same_org(nbr, vp_as)) truth.insert(nbr);
    }
  }
  std::set<topo::Asn> found;
  for (const auto& b : result.borders) found.insert(b.neighbor);
  int hits = 0;
  for (topo::Asn n : found) hits += truth.count(n) ? 1 : 0;
  // Precision: essentially every reported neighbor is a true neighbor.
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(found.size()),
            0.9);
  // Coverage is partial (hot-potato hides remote sites) but substantial
  // for the primary AS's neighbors.
  EXPECT_GT(found.size(), truth.size() / 4);
}

// Property: MAP-IT precision holds across independently generated worlds,
// not just the shared fixture.
class MapItSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapItSeedProperty, PrecisionAcrossSeeds) {
  gen::GeneratorConfig cfg = gen::GeneratorConfig::tiny();
  cfg.seed = GetParam();
  gen::World world = gen::generate_world(cfg);
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);
  Ip2As ip2as(*world.topo);
  OrgMap orgs(*world.topo);
  util::Rng rng(GetParam() + 100);
  measure::TracerouteOptions opt;
  std::vector<measure::TracerouteRecord> corpus;
  for (std::uint32_t server : world.mlab_servers) {
    for (std::size_t i = 0; i < world.clients.size(); i += 3) {
      corpus.push_back(measure::run_traceroute(
          *world.topo, fwd, server,
          world.topo->host(world.clients[i]).addr, 12.0, opt, rng));
    }
  }
  auto result = run_mapit(corpus, ip2as, orgs);
  auto acc = evaluate_mapit(result, *world.topo, orgs);
  ASSERT_GT(acc.crossings_checked, 10u);
  EXPECT_GT(acc.precision(), 0.85) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapItSeedProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(Bdrmap, RelationshipAnnotation) {
  Stack& s = tiny_stack();
  std::uint32_t vp = s.world.ark_vps[0];
  topo::Asn vp_as = s.world.topo->host(vp).asn;
  util::Rng rng(32);
  measure::ArkCampaignOptions opt;
  auto corpus = measure::ark_full_prefix_campaign(s.world, s.fwd, vp, opt, rng);
  AliasResolver aliases(*s.world.topo, 0.9, 42);
  auto result = run_bdrmap(corpus, vp_as, s.ip2as, s.orgs,
                           s.world.topo->relationships(), aliases);
  for (const auto& b : result.borders) {
    topo::RelType truth = s.world.topo->relationships().between(vp_as, b.neighbor);
    if (truth != topo::RelType::kNone) {
      EXPECT_EQ(b.rel, truth);
    }
  }
  auto counts = result.counts();
  EXPECT_EQ(counts.as_total, counts.as_cust + counts.as_prov +
                                 counts.as_peer + counts.as_unknown);
}

}  // namespace
}  // namespace netcong::infer
