#pragma once

// IP-level interdomain link diversity behind an AS-level aggregate (paper
// Table 2 / Section 4.3, Assumption 3): for tests from one server, identify
// which IP-level interdomain link each test crossed into the client's
// network, count tests per link, and use reverse-DNS naming to group
// apparent links into router-level interconnects (the Cox parallel-link
// analysis).

#include <map>
#include <string>
#include <vector>

#include "infer/datasets.h"
#include "infer/mapit.h"
#include "measure/matching.h"
#include "topo/dns.h"

namespace netcong::core {

struct IpLinkUsage {
  topo::IpAddr near_addr;
  topo::IpAddr far_addr;
  std::size_t tests = 0;
  std::string near_dns;  // PTR of the near-side interface, if seen
  std::string far_dns;
};

struct ClientAsDiversity {
  topo::Asn client_asn = 0;
  std::string isp;
  std::vector<IpLinkUsage> links;  // sorted by tests, descending

  std::size_t total_tests() const;
};

// For matched tests from `server_asn`'s org toward clients, find the
// crossing from the server org into the client org on each traceroute and
// aggregate per client ASN. Tests whose path never crosses directly
// (multi-hop) are skipped — Table 2 concerns direct interconnections.
std::vector<ClientAsDiversity> analyze_link_diversity(
    const std::vector<measure::MatchedTest>& matched, topo::Asn server_asn,
    const infer::MapItResult& mapit, const infer::Ip2As& ip2as,
    const infer::OrgMap& orgs,
    const std::map<topo::Asn, std::string>& isp_of,
    const std::map<std::uint32_t, std::string>& dns_of);

// DNS-based router grouping (the 39-link Cox case): groups a client AS's
// links by (router token, city tag) parsed from the near-side PTR.
struct DnsRouterGroup {
  std::string router_and_city;  // "edge5.Dallas3"
  std::size_t links = 0;
  std::size_t tests = 0;
};
std::vector<DnsRouterGroup> group_links_by_dns(const ClientAsDiversity& d);

}  // namespace netcong::core
