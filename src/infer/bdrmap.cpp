#include "infer/bdrmap.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/flat_map.h"

namespace netcong::infer {

namespace {
struct BdrmapMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter runs = reg.counter("bdrmap.runs");
  obs::Counter borders = reg.counter("bdrmap.borders");
};
const BdrmapMetrics& bdrmap_metrics() {
  static const BdrmapMetrics m;
  return m;
}
}  // namespace

BdrmapCounts BdrmapResult::counts() const {
  BdrmapCounts c;
  for (const auto& b : borders) {
    int routers = static_cast<int>(b.far_routers.size());
    c.as_total += 1;
    c.router_total += routers;
    switch (b.rel) {
      case topo::RelType::kProvider:  // V is provider => neighbor is customer
        c.as_cust += 1;
        c.router_cust += routers;
        break;
      case topo::RelType::kCustomer:  // V is customer => neighbor is provider
        c.as_prov += 1;
        c.router_prov += routers;
        break;
      case topo::RelType::kPeer:
        c.as_peer += 1;
        c.router_peer += routers;
        break;
      case topo::RelType::kNone:
        c.as_unknown += 1;
        c.router_unknown += routers;
        break;
    }
  }
  return c;
}

double bdrmap_neighbor_recall(const BdrmapResult& inferred,
                              const BdrmapResult& reference) {
  if (reference.borders.empty()) return 0.0;
  std::size_t found = 0;
  for (const auto& ref : reference.borders) {
    for (const auto& b : inferred.borders) {
      if (b.neighbor == ref.neighbor) {
        ++found;
        break;
      }
    }
  }
  return static_cast<double>(found) /
         static_cast<double>(reference.borders.size());
}

BdrmapResult borders_from_mapit(MapItResult mapit, topo::Asn vp_as,
                                const OrgMap& orgs,
                                const topo::RelationshipTable& rels,
                                const AliasResolver& aliases) {
  obs::Span span("bdrmap.run");
  BdrmapResult result;
  result.vp_as = vp_as;
  result.mapit = std::move(mapit);

  // Crossings out of the VP network's org, keyed by neighbor ASN.
  util::FlatMap<topo::Asn, BdrmapBorder> borders;
  for (const auto& c : result.mapit.crossings) {
    if (!orgs.same_org(c.near_as, vp_as)) continue;
    if (orgs.same_org(c.far_as, vp_as)) continue;
    BdrmapBorder& b = borders[c.far_as];
    b.neighbor = c.far_as;
    b.far_ifaces.push_back(c.far_addr);
  }

  for (auto& [asn, b] : borders) {
    std::sort(b.far_ifaces.begin(), b.far_ifaces.end());
    b.far_ifaces.erase(std::unique(b.far_ifaces.begin(), b.far_ifaces.end()),
                       b.far_ifaces.end());
    for (topo::IpAddr a : b.far_ifaces) {
      b.far_routers.push_back(aliases.group(a));
    }
    std::sort(b.far_routers.begin(), b.far_routers.end());
    b.far_routers.erase(
        std::unique(b.far_routers.begin(), b.far_routers.end()),
        b.far_routers.end());
    b.rel = rels.between(vp_as, asn);
    result.borders.push_back(std::move(b));
  }
  std::sort(result.borders.begin(), result.borders.end(),
            [](const BdrmapBorder& x, const BdrmapBorder& y) {
              return x.neighbor < y.neighbor;
            });
  const BdrmapMetrics& metrics = bdrmap_metrics();
  metrics.runs.inc();
  metrics.borders.inc(result.borders.size());
  return result;
}

BdrmapResult run_bdrmap(const std::vector<measure::TracerouteRecord>& corpus,
                        topo::Asn vp_as, const Ip2As& ip2as,
                        const OrgMap& orgs,
                        const topo::RelationshipTable& rels,
                        const AliasResolver& aliases,
                        const BdrmapConfig& config) {
  return borders_from_mapit(run_mapit(corpus, ip2as, orgs, config.mapit),
                            vp_as, orgs, rels, aliases);
}

}  // namespace netcong::infer
