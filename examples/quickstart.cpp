// Quickstart: generate a small synthetic interconnection ecosystem, run a
// single NDT-style throughput test from the nearest M-Lab-like server to a
// cable client, and look at the paired server-side Paris traceroute.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "gen/world.h"
#include "infer/datasets.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "measure/traceroute.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "sim/throughput.h"

int main() {
  using namespace netcong;

  // 1. A deterministic world: ~400 ASes, routers, links, clients, servers.
  gen::GeneratorConfig cfg = gen::GeneratorConfig::small();
  cfg.seed = 2024;
  gen::World world = gen::generate_world(cfg);
  std::printf("world: %zu ASes, %zu routers, %zu links, %zu hosts\n",
              world.topo->as_count(), world.topo->routers().size(),
              world.topo->links().size(), world.topo->hosts().size());

  // 2. Control and data plane.
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);
  sim::ThroughputModel model(*world.topo, *world.traffic);

  // 3. Pick a Comcast-like client and its nearest M-Lab server.
  measure::Platform mlab("M-Lab", *world.topo, world.mlab_servers);
  std::uint32_t client = world.clients_of("Comcast").front();
  util::Rng rng(7);
  std::uint32_t server = mlab.select_server(client, rng);
  const topo::Host& c = world.topo->host(client);
  const topo::Host& s = world.topo->host(server);
  std::printf("client %s in %s (tier %.0f/%.0f Mbps, home quality %.2f)\n",
              c.addr.to_string().c_str(), world.topo->city(c.city).name.c_str(),
              c.tier.down_mbps, c.tier.up_mbps, c.home_quality);
  std::printf("server %s (%s) in %s\n", s.label.c_str(),
              world.topo->as_info(s.asn).name.c_str(),
              world.topo->city(s.city).name.c_str());

  // 4. Run the test at 21:00 local (peak) and 04:00 local (trough).
  measure::NdtCampaign campaign(world, fwd, model, mlab,
                                measure::CampaignConfig{});
  int offset = world.topo->city(c.city).utc_offset_hours;
  for (double local : {21.0, 4.0}) {
    double utc = local - offset;
    auto rec = campaign.run_single(client, server, utc, 1, rng);
    std::printf("  %02.0f:00 local -> download %.1f Mbps, RTT %.1f ms, "
                "retrans %.2f%%%s\n",
                local, rec.download_mbps, rec.flow_rtt_ms,
                100 * rec.retrans_rate,
                rec.truth_access_limited ? " (access-limited)" : "");
  }

  // 5. The server-side Paris traceroute, with prefix-to-AS annotation.
  infer::Ip2As ip2as(*world.topo);
  auto tr = measure::run_traceroute(*world.topo, fwd, server, c.addr, 12.0,
                                    measure::TracerouteOptions{}, rng);
  std::printf("traceroute %s -> %s (%zu AS hops in truth):\n",
              s.addr.to_string().c_str(), c.addr.to_string().c_str(),
              tr.truth.as_hop_count());
  for (const auto& hop : tr.hops) {
    if (!hop.responded) {
      std::printf("  %2d  *\n", hop.ttl);
      continue;
    }
    topo::Asn origin = ip2as.origin(hop.addr);
    std::printf("  %2d  %-15s  %5.1f ms  AS%-6u %s\n", hop.ttl,
                hop.addr.to_string().c_str(), hop.rtt_ms, origin,
                hop.dns_name.empty() ? "" : hop.dns_name.c_str());
  }
  return 0;
}
