// Gtest wrapper for the "ingest" property family: the always-on service's
// snapshots must be bit-identical to batch runs over the same event-log
// prefix for any producer interleaving and shard count, and its queue
// accounting must conserve events under both overflow policies.

#include <gtest/gtest.h>

#include "check/properties.h"

namespace netcong::check {
namespace {

std::vector<const Property*> family_properties(const char* family) {
  std::vector<const Property*> out;
  for (const Property& p : all_properties()) {
    if (p.family == family) out.push_back(&p);
  }
  return out;
}

class IngestProperty : public ::testing::TestWithParam<const Property*> {};

TEST_P(IngestProperty, Holds) {
  util::pbt::Config cfg;
  cfg.iterations = 0;  // the property's bounded default budget
  util::pbt::CheckResult result = run_property(*GetParam(), cfg);
  EXPECT_TRUE(result.ok) << result.report;
}

std::string test_name(const ::testing::TestParamInfo<const Property*>& info) {
  std::string name = info.param->name;
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Registry, IngestProperty,
                         ::testing::ValuesIn(family_properties("ingest")),
                         test_name);

TEST(IngestFamily, RegistryHasEnoughProperties) {
  EXPECT_GE(family_properties("ingest").size(), 2u);
}

}  // namespace
}  // namespace netcong::check
