#!/usr/bin/env bash
# Memory-checks the degraded-data paths (fault injection, corpus
# degradation, inference over lossy corpora) under AddressSanitizer in one
# command:
#
#   tools/run_asan.sh [extra cmake args...]
#
# Configures a dedicated build-asan tree with -fsanitize=address and runs
# every test carrying the `asan` CTest label.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-asan
cmake -B "$BUILD" -S . -DNETCONG_SANITIZE=address "$@"
cmake --build "$BUILD" -j "$(nproc)"
# asan-labeled tests plus the obs suite (ring-buffer indexing and slab
# pooling are the kind of code ASan exists for).
ctest --test-dir "$BUILD" -L 'asan|obs' --output-on-failure
