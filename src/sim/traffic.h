#pragma once

// Per-link background traffic state. Each link carries a load profile —
// base (trough) and peak utilization plus a diurnal shape evaluated in the
// link's local time zone — from which the model derives time-dependent
// utilization, queueing delay, and loss rate.
//
// Congestion is therefore *generated*, not assumed: the topology generator
// marks chosen interdomain links with peak utilization >= 1 (demand exceeds
// capacity at peak hours) and everything downstream — NDT throughput drops,
// diurnal patterns, inference — follows from this ground truth.

#include <unordered_map>

#include "topo/topology.h"
#include "sim/diurnal.h"
#include "util/rng.h"

namespace netcong::sim {

struct LinkLoadProfile {
  double base_util = 0.15;  // utilization at the diurnal trough
  double peak_util = 0.55;  // utilization at the diurnal peak (>1 = congested)
  double noise_sigma = 0.03;  // lognormal-ish jitter on utilization
  DiurnalShape shape{};
  // Interconnection disputes end: at this absolute time (hours since the
  // campaign start) the link is upgraded and utilization scales by
  // upgrade_factor (<1). Negative = never. This models the real-world
  // pattern the paper describes, where congestion at a peering point
  // disappears once a settlement is reached and capacity is added.
  double upgrade_at_hours = -1.0;
  double upgrade_factor = 0.5;
};

// Instantaneous state of one link.
struct LinkCondition {
  double utilization = 0.0;     // offered background load / capacity
  double queue_delay_ms = 0.0;  // standing queue at the link buffer
  double loss_rate = 0.0;       // packet loss probability
};

class TrafficModel {
 public:
  struct Params {
    // Buffer depth expressed as milliseconds at line rate (a standing queue
    // of this depth forms when the link saturates).
    double buffer_ms = 50.0;
    // Utilization above which a queue starts building.
    double queue_onset_util = 0.85;
    // Baseline loss on any path (transmission errors etc.).
    double floor_loss = 1e-5;
    // Average rate of a background flow in Mbps, used to estimate how many
    // flows the test flow competes with at a saturated link.
    double mean_bg_flow_mbps = 3.0;
  };

  explicit TrafficModel(const topo::Topology& topo)
      : TrafficModel(topo, Params{}) {}
  TrafficModel(const topo::Topology& topo, Params params);

  // Default profile applied to links with no explicit profile.
  void set_default_profile(LinkLoadProfile p) { default_profile_ = p; }
  void set_profile(topo::LinkId link, LinkLoadProfile p);
  const LinkLoadProfile& profile(topo::LinkId link) const;

  // Deterministic (noise-free) utilization. `utc_time_hours` is absolute
  // time since campaign start (hour-of-day = fmod 24); the link's local
  // time comes from the city of its first endpoint. Times beyond 24h allow
  // the upgrade schedule to take effect.
  double utilization(topo::LinkId link, double utc_time_hours) const;

  // Full condition including sampled noise.
  LinkCondition condition(topo::LinkId link, double utc_time_hours,
                          util::Rng& rng) const;

  // Ground truth used by validation: does this link's offered load exceed
  // capacity at its diurnal peak?
  bool congested_at_peak(topo::LinkId link) const;

  double local_hour_at(topo::LinkId link, double utc_hour) const;

  const Params& params() const { return params_; }

 private:
  const topo::Topology* topo_;
  Params params_;
  LinkLoadProfile default_profile_{};
  std::unordered_map<topo::LinkId, LinkLoadProfile> profiles_;
};

}  // namespace netcong::sim
