#pragma once

// Always-on ingest service (DESIGN.md §11/§12): bounded MPSC queues feed
// sharded worker threads, each owning incremental evidence stores
// (MapItEvidence for traceroutes, NdtStreamStats for tests). snapshot()
// quiesces producers, drains the queues, merges the per-shard stores and
// runs the same inference tail as a batch run (MapItEvidence::infer +
// borders_from_mapit), so a snapshot after N consumed events is bit-identical
// to run_mapit/run_bdrmap over the same N-event log prefix — the equivalence
// the ingest.snapshot_equals_batch property enforces for every shard count.
//
// Why sharding is sound: both evidence stores are commutative monoids keyed
// by pure functions of single events, and FlatMap's canonical layout makes
// the merged table a pure function of the event *set*. Routing (seq % shards)
// therefore only changes which shard holds which partial sum, never the
// merged result.
//
// Durability and aging (§12): an attached WalWriter persists every accepted
// event before it is enqueued, and evidence is bucketed per sequence-number
// epoch so retention can evict whole epochs below a deterministic watermark
// — a pure function of the submitted-event count and the retention config,
// never of wall clock — keeping snapshots reproducible under eviction
// (ingest.eviction_watermark_deterministic).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "infer/bdrmap.h"
#include "infer/mapit.h"
#include "obs/metrics.h"
#include "serve/event.h"
#include "serve/ndt_stats.h"
#include "serve/queue.h"

namespace netcong::serve {

class WalWriter;

struct ServeConfig {
  // 0 = one shard per hardware thread (at least 1).
  std::size_t shards = 0;
  std::size_t queue_capacity = 1024;
  OverflowPolicy policy = OverflowPolicy::kBlock;
  infer::MapItConfig mapit;
  // The vantage point's ASN; snapshots include a bdrmap border map when the
  // relationship table and alias resolver have been provided.
  topo::Asn vp_as = 0;
  // Evidence retention: events are bucketed by epoch = seq / epoch_events,
  // and each snapshot evicts every epoch below the watermark that keeps the
  // newest retain_epochs epochs. retain_epochs = 0 disables eviction (the
  // pre-§12 unbounded behaviour).
  std::uint64_t epoch_events = 8192;
  std::uint64_t retain_epochs = 0;
  // Test knob: each worker sleeps this long per consumed event, making a
  // slow consumer (and thus backpressure / drops) deterministic to provoke.
  std::uint32_t consume_delay_us = 0;
};

// Service-wide accounting. Invariant (checked by the
// ingest.drop_policy_accounting property): submitted = enqueued + dropped,
// and after flush() consumed == enqueued. Events refused by a failed WAL
// count as dropped (wal_rejected breaks them out), so the conservation
// holds with durability on.
struct ServiceCounters {
  std::uint64_t submitted = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t consumed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t wal_rejected = 0;  // subset of dropped
  std::uint64_t evicted = 0;       // events aged out of the evidence stores
};

// Border churn between two consecutive snapshots — the service's
// anomaly-facing output: a neighbor AS appearing in or vanishing from the
// border map between snapshots is exactly the event an interconnection
// monitor alerts on.
struct SnapshotDiff {
  std::vector<topo::Asn> borders_added;    // ascending
  std::vector<topo::Asn> borders_removed;  // ascending
  std::int64_t events_delta = 0;  // consumed-event count change
  bool changed() const {
    return !borders_added.empty() || !borders_removed.empty();
  }
};

struct ServiceSnapshot {
  // Events represented in the evidence stores (consumed minus evicted).
  std::uint64_t events_consumed = 0;
  // All events ever assigned a sequence number, including evicted ones.
  std::uint64_t events_total = 0;
  // Events aged out of the stores so far (cumulative).
  std::uint64_t events_evicted = 0;
  // First sequence number the evidence still covers: every retained event
  // has seq >= eviction_watermark. 0 when retention is off.
  std::uint64_t eviction_watermark = 0;
  std::uint64_t traces = 0;
  std::uint64_t ndt_tests = 0;
  infer::MapItResult mapit;
  // Present when relationships/aliases were wired in (set_relationships).
  std::optional<infer::BdrmapResult> borders;
  NdtStreamStats ndt;
  // Churn against the previous snapshot of this service (empty diff on the
  // first snapshot).
  SnapshotDiff diff;
  // Wall time spent inside snapshot(): quiesce + drain + merge + infer.
  // This is the staleness of the freshest data the snapshot can contain.
  double snapshot_ms = 0.0;
  // Deterministic digest of the full snapshot (evidence + inference), for
  // the batch-equivalence proof and for cheap cross-run comparison.
  std::uint64_t fingerprint = 0;
};

// Recomputes the border churn between two snapshots; the service fills
// ServiceSnapshot::diff with exactly this (serve_test cross-checks).
SnapshotDiff diff_snapshots(const ServiceSnapshot& prev,
                            const ServiceSnapshot& cur);

class IngestService {
 public:
  // The referenced tables must outlive the service.
  IngestService(const infer::Ip2As& ip2as, const infer::OrgMap& orgs,
                ServeConfig config);
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  // Optional: enables the bdrmap stage of snapshots. Must be called before
  // start(); pointers must outlive the service.
  void set_relationships(const topo::RelationshipTable* rels,
                         const infer::AliasResolver* aliases);

  // Optional durability: every accepted event is appended to the WAL
  // before it is enqueued, so a crashed process can recover_wal() and
  // replay. Must be called before start(); the writer (already open) must
  // outlive the service. A failed append rejects the submit (counted in
  // dropped/wal_rejected) — an event the log cannot hold must not enter
  // volatile state claiming to be durable.
  void attach_wal(WalWriter* wal);

  // Spawns the shard workers. Idempotent.
  void start();

  // Routes one event to its shard. Returns false when the event was dropped
  // (kDrop policy, full queue), refused by the WAL, or the service is
  // stopped. Thread-safe; any number of producers may call concurrently.
  bool submit(IngestEvent event);

  // Blocks until every enqueued event has been consumed. Queues stay open;
  // producers blocked in submit() under kBlock may refill them afterwards.
  void flush();

  // Quiesces producers, drains all queues, evicts evidence epochs below
  // the retention watermark, merges the per-shard stores and runs
  // inference. The service keeps running; subsequent submits continue to
  // accumulate on top of the same evidence.
  ServiceSnapshot snapshot();

  // Graceful shutdown: drains everything in flight, takes a final
  // snapshot, stops the workers and syncs the WAL (if attached). The
  // returned snapshot is the service's last word.
  ServiceSnapshot drain_and_stop();

  // Closes the queues and joins the workers. Idempotent; the destructor
  // calls it. After stop(), submit() returns false.
  void stop();

  bool running() const { return running_; }
  std::size_t shards() const { return shards_.size(); }
  ServiceCounters counters() const;
  const ServeConfig& config() const { return config_; }

 private:
  // Queue element: the global sequence number rides along so the worker
  // can bucket evidence by epoch without re-deriving arrival order.
  struct SeqEvent {
    std::uint64_t seq = 0;
    IngestEvent event;
  };

  // Per-epoch evidence bucket. Eviction drops whole buckets, so the
  // retained stores are always an exact union of epoch event sets.
  struct EpochStore {
    infer::MapItEvidence mapit;
    NdtStreamStats ndt;
    std::uint64_t ndt_tests = 0;
    std::uint64_t events = 0;
  };

  struct Shard {
    explicit Shard(std::size_t capacity, OverflowPolicy policy)
        : queue(capacity, policy) {}
    BoundedQueue<SeqEvent> queue;
    std::thread worker;
    // Written only by the worker thread; read under quiescence (flush
    // drains the queue and a consumed-count barrier orders these writes).
    // std::map: deterministic ascending-epoch iteration, cold path.
    std::map<std::uint64_t, EpochStore> epochs;
    obs::Gauge depth_gauge;
  };

  void worker_loop(Shard& shard);
  std::uint64_t epoch_of(std::uint64_t seq) const;
  std::uint64_t watermark_epoch_locked() const;
  void evict_locked();

  const infer::Ip2As& ip2as_;
  const infer::OrgMap& orgs_;
  const topo::RelationshipTable* rels_ = nullptr;
  const infer::AliasResolver* aliases_ = nullptr;
  WalWriter* wal_ = nullptr;
  ServeConfig config_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::uint64_t> wal_rejected_{0};
  std::atomic<bool> running_{false};
  // submit() holds this shared; snapshot() holds it exclusive while it
  // drains, so no producer can interleave new events mid-snapshot.
  std::shared_mutex gate_;

  // Eviction state, written only under the exclusive gate; atomics so
  // counters() can read them without taking it.
  std::atomic<std::uint64_t> evicted_events_{0};
  std::atomic<std::uint64_t> eviction_watermark_{0};
  // Previous snapshot's border set (neighbor ASNs, ascending) and event
  // count, for the diff stream.
  bool have_prev_snapshot_ = false;
  std::vector<topo::Asn> prev_borders_;
  std::uint64_t prev_events_ = 0;

  obs::Counter enqueued_ctr_;
  obs::Counter consumed_ctr_;
  obs::Counter dropped_ctr_;
  obs::Counter snapshots_ctr_;
  obs::Counter evicted_events_ctr_;
  obs::Counter evicted_tests_ctr_;
  obs::Counter evicted_traces_ctr_;
  obs::Counter evicted_epochs_ctr_;
  obs::Histogram snapshot_ms_hist_;
};

// Digest of an (evidence, inference) snapshot; also used by the property
// family to fingerprint a batch run for comparison.
std::uint64_t snapshot_fingerprint(const ServiceSnapshot& snap);

}  // namespace netcong::serve
