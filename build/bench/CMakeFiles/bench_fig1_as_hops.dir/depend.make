# Empty dependencies file for bench_fig1_as_hops.
# This may be replaced when dependencies are built.
