#pragma once

// Simplified AS-level tomography (paper Section 3.1) with explicit checks
// of its three assumptions. The method: if tests from source network S1 to
// access ISP A degrade at peak while tests from S2 to A do not, the
// client-side access/home explanation is ruled out and the degradation is
// attributed to the S1-A interconnection. Correctness then rests on:
//   A1 — no congestion internal to ASes;
//   A2 — the server and client ASes are directly connected;
//   A3 — all router-level interconnections behave alike.
// Each assumption has a checker here; A1 can only be checked against
// simulation ground truth (the paper had no data for it either).

#include <map>
#include <string>
#include <vector>

#include "core/adjacency.h"
#include "core/diurnal.h"
#include "core/stratify.h"

namespace netcong::core {

struct AsTomographyCall {
  std::string source;  // source network label
  std::string isp;
  double relative_drop = 0.0;
  // Enough samples in both the peak and off-peak windows to compare at all
  // (the paper's Section 6.1 sparse-sample problem when false).
  bool usable = false;
  bool degraded = false;         // diurnal degradation observed
  bool client_side_ruled_out = false;  // some other source to this ISP is clean
  bool congestion_inferred = false;  // final call: interdomain link S-A congested
  std::size_t tests = 0;
  std::size_t peak_samples = 0;
  std::size_t offpeak_samples = 0;
};

// Runs the full simplified-tomography inference over diurnal groups.
std::vector<AsTomographyCall> as_level_tomography(
    const std::map<GroupKey, DiurnalGroup>& groups, double drop_threshold,
    std::size_t min_samples = 20);

struct AssumptionReport {
  // A2: fraction of matched tests (per ISP) with server and client orgs
  // directly connected.
  std::vector<AdjacencyStats> a2_adjacency;
  // A3: per (server org, client AS) spread of per-link diurnal drops; a
  // large spread means the AS-level aggregate mixes dissimilar links.
  struct A3Entry {
    topo::Asn server_asn = 0;
    topo::Asn client_asn = 0;
    std::size_t ip_links = 0;
    double drop_spread = 0.0;
  };
  std::vector<A3Entry> a3_diversity;
  // A1 (ground truth only): congested internal links present in the world.
  std::size_t a1_internal_congested = 0;
};

}  // namespace netcong::core
