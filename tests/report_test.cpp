#include <gtest/gtest.h>

#include <cmath>

#include "core/report.h"
#include "helpers.h"

namespace netcong::core {
namespace {

TEST(ReportCell, DegradedDaysAndStreak) {
  ReportCell c;
  // Days: 0-2 degraded (peak 10 vs off 50), 3 recovered, 4-5 degraded.
  c.daily_peak_median_mbps = {10, 10, 10, 45, 10, 10};
  c.daily_offpeak_median_mbps = {50, 50, 50, 50, 50, 50};
  EXPECT_EQ(c.degraded_days(0.6), 5);
  EXPECT_EQ(c.longest_degraded_streak(0.6), 3);
  // NaN days are skipped.
  c.daily_peak_median_mbps[1] = std::nan("");
  EXPECT_EQ(c.degraded_days(0.6), 4);
  EXPECT_EQ(c.longest_degraded_streak(0.6), 2);
}

TEST(Report, BuildsCellsAndFlagsPersistence) {
  const gen::World& w = test::tiny_world();
  std::uint32_t client = w.clients[0];
  const topo::Host& h = w.topo->host(client);
  int offset = w.topo->city(h.city).utc_offset_hours;
  // A transit server host.
  std::uint32_t server = w.mlab_servers[0];
  topo::Asn server_asn = w.topo->host(server).asn;

  auto at = [&](int day, double local) {
    double utc = local - offset;
    while (utc < 0) utc += 24;
    while (utc >= 24) utc -= 24;
    return day * 24.0 + utc;
  };

  std::vector<measure::NdtRecord> tests;
  for (int day = 0; day < 10; ++day) {
    for (int i = 0; i < 8; ++i) {
      measure::NdtRecord peak;
      peak.client = client;
      peak.client_asn = h.asn;
      peak.server = server;
      peak.server_asn = server_asn;
      peak.utc_time_hours = at(day, 21.0);
      peak.download_mbps = day < 8 ? 5.0 : 50.0;  // recovers on day 8
      tests.push_back(peak);

      measure::NdtRecord off = peak;
      off.utc_time_hours = at(day, 12.0);
      off.download_mbps = 50.0;
      tests.push_back(off);
    }
  }

  std::map<topo::Asn, std::string> isp_of = {{h.asn, "TestISP"}};
  ReportOptions opt;
  opt.days = 10;
  opt.min_tests_per_cell = 50;
  opt.persistent_streak_days = 5;
  auto report = build_interconnect_report(tests, w, isp_of, opt);
  ASSERT_EQ(report.cells.size(), 1u);
  const ReportCell& cell = report.cells[0];
  EXPECT_EQ(cell.isp, "TestISP");
  EXPECT_EQ(cell.tests, tests.size());
  EXPECT_EQ(cell.longest_degraded_streak(opt.degraded_fraction), 8);
  ASSERT_EQ(report.persistent.size(), 1u);
  EXPECT_EQ(report.persistent[0], 0u);
}

TEST(Report, RespectsMinTests) {
  const gen::World& w = test::tiny_world();
  std::uint32_t client = w.clients[0];
  std::uint32_t server = w.mlab_servers[0];
  std::vector<measure::NdtRecord> tests;
  measure::NdtRecord r;
  r.client = client;
  r.client_asn = w.topo->host(client).asn;
  r.server = server;
  r.server_asn = w.topo->host(server).asn;
  r.utc_time_hours = 1.0;
  r.download_mbps = 10.0;
  tests.push_back(r);
  std::map<topo::Asn, std::string> isp_of = {{r.client_asn, "TestISP"}};
  ReportOptions opt;
  opt.min_tests_per_cell = 100;
  auto report = build_interconnect_report(tests, w, isp_of, opt);
  EXPECT_TRUE(report.cells.empty());
}

TEST(TrafficUpgrade, ReducesUtilizationAfterEvent) {
  const gen::World& w = test::tiny_world();
  ASSERT_FALSE(w.congested_links.empty());
  topo::LinkId link = w.congested_links[0];
  sim::LinkLoadProfile p = w.traffic->profile(link);
  p.upgrade_at_hours = 48.0;
  p.upgrade_factor = 0.5;
  sim::TrafficModel local(*w.topo);
  local.set_profile(link, p);
  // Same hour-of-day, before vs after the upgrade.
  double before = local.utilization(link, 20.0);
  double after = local.utilization(link, 48.0 + 20.0);
  EXPECT_NEAR(after, 0.5 * before, 1e-9);
}

}  // namespace
}  // namespace netcong::core
