// Table 2 / Section 4.3: IP-level interdomain links behind one server's
// AS-level aggregates (Assumption 3). Picks the Atlanta server of the
// Level3-like transit, lists the interdomain links its tests crossed into
// each access AS, the per-link test counts, and the reverse-DNS grouping of
// the Cox-style parallel-link fan-out.

#include <algorithm>
#include <cstdio>
#include <map>

#include "common.h"
#include "core/link_diversity.h"
#include "gen/paper_data.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header(
      "Table 2",
      "Interdomain links to top US ISPs seen by one Level3-hosted server "
      "(Atlanta), with tests per link");

  bench::Context ctx(bench::bench_config());
  bench::CampaignData data =
      bench::run_standard_campaign(ctx, 28, 14.0, /*seed=*/2);

  // The Level3-like host network, restricted to its Atlanta servers (the
  // paper analyzed the single server site atl01).
  topo::Asn level3 = 3356;
  std::vector<measure::MatchedTest> matched_atl;
  for (const auto& m : data.matched) {
    if (m.test->server_asn != level3) continue;
    const topo::Host& srv = ctx.world.topo->host(m.test->server);
    if (ctx.world.topo->city(srv.city).code != "atl") continue;
    matched_atl.push_back(m);
  }
  std::printf("tests from Level3/Atlanta servers: %zu (matched with "
              "traceroutes: %zu)\n",
              matched_atl.size(),
              static_cast<std::size_t>(std::count_if(
                  matched_atl.begin(), matched_atl.end(),
                  [](const measure::MatchedTest& m) { return m.traceroute; })));

  std::map<std::uint32_t, std::string> dns_of;
  for (const auto& i : ctx.world.topo->interfaces()) {
    if (!i.dns_name.empty()) dns_of[i.addr.value] = i.dns_name;
  }

  auto diversity = core::analyze_link_diversity(
      matched_atl, level3, data.mapit, ctx.ip2as, ctx.orgs, ctx.isp_of,
      dns_of);

  util::TextTable table({"Client ISP (ASN)", "# links", "tests per link"});
  const core::ClientAsDiversity* fan_out = nullptr;
  for (const auto& d : diversity) {
    if (d.total_tests() < 20) continue;
    std::vector<std::string> counts;
    for (std::size_t i = 0; i < d.links.size() && i < 14; ++i) {
      counts.push_back(std::to_string(d.links[i].tests));
    }
    std::string count_str = util::join(counts, ",");
    if (d.links.size() > 14) count_str += ",...";
    table.add_row({util::format("%s (AS%u)", d.isp.c_str(), d.client_asn),
                   std::to_string(d.links.size()), count_str});
    if (!fan_out || d.links.size() > fan_out->links.size()) fan_out = &d;
  }
  std::printf("%s", table.render().c_str());

  std::printf("\npaper reported (Atlanta Level3 server, May 2015):\n");
  util::TextTable paper({"Client ISP (ASN)", "# links", "tests per link"});
  for (const auto& row : gen::paper::table2_links()) {
    paper.add_row({std::string(row.client), std::to_string(row.links),
                   std::string(row.tests_per_link)});
  }
  std::printf("%s", paper.render().c_str());

  if (fan_out) {
    std::printf(
        "\nDNS-based router grouping of the largest fan-out (%s, %zu links"
        ") — the paper's Cox analysis:\n",
        fan_out->isp.c_str(), fan_out->links.size());
    util::TextTable groups({"router.city (from PTR)", "# links", "tests"});
    for (const auto& g : core::group_links_by_dns(*fan_out)) {
      groups.add_row({g.router_and_city, std::to_string(g.links),
                      std::to_string(g.tests)});
    }
    std::printf("%s", groups.render().c_str());
    bench::print_footnote(
        "multiple links collapsing onto one router.city are parallel links "
        "between the same border routers (paper: 12 Cox links on one Dallas "
        "router)");
  }
  return 0;
}
