#include "route/forwarding.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "topo/geo.h"
#include "util/rng.h"

namespace netcong::route {

using topo::Asn;
using topo::CityId;
using topo::InterfaceId;
using topo::IpAddr;
using topo::LinkId;
using topo::RouterId;

std::uint64_t flow_hash(const FlowKey& key, std::uint64_t salt) {
  char buf[16];
  std::memcpy(buf, &key.src.value, 4);
  std::memcpy(buf + 4, &key.dst.value, 4);
  std::memcpy(buf + 8, &key.src_port, 2);
  std::memcpy(buf + 10, &key.dst_port, 2);
  std::memcpy(buf + 12, &key.proto, 1);
  buf[13] = buf[14] = buf[15] = 0;
  std::uint64_t h = util::fnv1a(std::string_view(buf, sizeof(buf)));
  // Mix in the salt with a splitmix finalizer.
  std::uint64_t z = h + salt * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t bb_key(Asn asn, CityId city) {
  return (static_cast<std::uint64_t>(asn) << 32) | city.value;
}

InterfaceId iface_on(const topo::Topology& topo, LinkId link, RouterId r) {
  const topo::Link& l = topo.link(link);
  return topo.iface(l.side_a).router == r ? l.side_a : l.side_b;
}
}  // namespace

Forwarder::Forwarder(const topo::Topology& topo, const BgpRouting& bgp)
    : topo_(&topo), bgp_(&bgp) {
  for (const auto& r : topo.routers()) {
    if (r.role == topo::RouterRole::kBackbone) {
      backbone_.try_emplace(bb_key(r.owner, r.city), r.id);
    }
  }
}

RouterId Forwarder::backbone(Asn asn, CityId city) const {
  auto it = backbone_.find(bb_key(asn, city));
  return it == backbone_.end() ? RouterId{} : it->second;
}

void Forwarder::set_withdrawn_links(std::vector<topo::LinkId> links) {
  withdrawn_ = std::move(links);
  std::sort(withdrawn_.begin(), withdrawn_.end());
}

bool Forwarder::traverse(RouterId from, RouterId to, const FlowKey& key,
                         std::uint64_t salt, RouterPath& out) const {
  const auto& links = topo_->links_between(from, to);
  if (links.empty()) return false;
  LinkId chosen;
  if (withdrawn_.empty()) {
    chosen = links[flow_hash(key, salt) % links.size()];
  } else {
    std::vector<LinkId> alive;
    alive.reserve(links.size());
    for (LinkId id : links) {
      if (!link_withdrawn(id)) alive.push_back(id);
    }
    if (alive.empty()) return false;
    chosen = alive[flow_hash(key, salt) % alive.size()];
  }
  out.links.push_back(chosen);
  out.hops.push_back(RouterHop{to, iface_on(*topo_, chosen, to), chosen});
  out.one_way_delay_ms += topo_->link(chosen).prop_delay_ms;
  return true;
}

bool Forwarder::intra_as_segment(RouterId from, RouterId to,
                                 const FlowKey& key, std::uint64_t salt,
                                 RouterPath& out) const {
  if (from == to) return true;
  // Direct connection (router pair adjacent inside the AS)?
  if (!topo_->links_between(from, to).empty()) {
    return traverse(from, to, key, salt ^ 0x51ed, out);
  }
  const topo::Router& rf = topo_->router(from);
  const topo::Router& rt = topo_->router(to);
  assert(rf.owner == rt.owner);
  RouterId bb_from =
      rf.role == topo::RouterRole::kBackbone ? from : backbone(rf.owner, rf.city);
  RouterId bb_to =
      rt.role == topo::RouterRole::kBackbone ? to : backbone(rt.owner, rt.city);
  if (!bb_from.valid() || !bb_to.valid()) return false;
  RouterId cur = from;
  if (bb_from != cur) {
    if (!traverse(cur, bb_from, key, salt ^ 0xa1, out)) return false;
    cur = bb_from;
  }
  if (bb_to != cur) {
    if (!traverse(cur, bb_to, key, salt ^ 0xa2, out)) return false;
    cur = bb_to;
  }
  if (to != cur) {
    if (!traverse(cur, to, key, salt ^ 0xa3, out)) return false;
  }
  return true;
}

std::optional<LinkId> Forwarder::choose_interdomain(Asn cur_as, Asn next_as,
                                                    RouterId cur_router,
                                                    topo::CityId dest_city,
                                                    const FlowKey& key,
                                                    std::uint64_t salt) const {
  std::vector<LinkId> candidates = topo_->interdomain_links(cur_as, next_as);
  if (!withdrawn_.empty()) {
    candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                    [this](LinkId id) {
                                      return link_withdrawn(id);
                                    }),
                     candidates.end());
  }
  if (candidates.empty()) return std::nullopt;

  const topo::City& here = topo_->city(topo_->router(cur_router).city);
  const topo::City& dest = topo_->city(dest_city);
  // Score = hot-potato distance, a regional pull toward the destination,
  // and a stable per-(flow, link) jitter standing in for IGP metrics, MEDs
  // and traffic engineering. The jitter is what lets a single vantage point
  // observe several interconnection sites toward the same neighbor, as real
  // bdrmap campaigns do (paper Table 3's router-level counts).
  double best = 1e18;
  std::vector<LinkId> nearest;
  for (LinkId id : candidates) {
    const topo::Link& l = topo_->link(id);
    RouterId near_side = topo_->link(id).as_a == cur_as
                             ? topo_->iface(l.side_a).router
                             : topo_->iface(l.side_b).router;
    const topo::City& c = topo_->city(topo_->router(near_side).city);
    double jitter = static_cast<double>(
        flow_hash(key, 0xbeef0000ull ^ (std::uint64_t{id.value} * 2654435761ull)) %
        700u);
    double d = topo::city_distance_km(here, c) +
               0.6 * topo::city_distance_km(c, dest) + jitter;
    if (d < best - 1.0) {
      best = d;
      nearest.clear();
      nearest.push_back(id);
    } else if (d < best + 1.0) {
      nearest.push_back(id);
    }
  }
  // ECMP among equally near links: stable per-flow choice. Sorting makes the
  // result independent of topology insertion order.
  std::sort(nearest.begin(), nearest.end());
  return nearest[flow_hash(key, salt) % nearest.size()];
}

RouterPath Forwarder::path(std::uint32_t src_host, IpAddr dst,
                           const FlowKey& key) const {
  RouterPath out;
  const topo::Host& src = topo_->host(src_host);

  // Resolve the destination to (AS, attachment router, last-mile delay).
  Asn dst_asn = 0;
  RouterId dst_attachment;
  topo::CityId dst_city;
  double dst_access_delay = 0.0;
  if (auto dst_host_id = topo_->host_by_addr(dst)) {
    const topo::Host& h = topo_->host(*dst_host_id);
    dst_asn = h.asn;
    dst_attachment = h.attachment;
    dst_city = h.city;
    dst_access_delay = h.access_delay_ms;
  } else if (auto ifid = topo_->interface_by_addr(dst)) {
    const topo::Router& r = topo_->router(topo_->iface(*ifid).router);
    dst_asn = r.owner;
    dst_attachment = r.id;
    dst_city = r.city;
  } else if (auto owner = topo_->true_owner(dst)) {
    // Arbitrary address inside an AS's space: the path terminates at the
    // AS's first backbone router (good enough for topology probing).
    dst_asn = *owner;
    for (RouterId r : topo_->routers_of(dst_asn)) {
      if (topo_->router(r).role == topo::RouterRole::kBackbone) {
        dst_attachment = r;
        dst_city = topo_->router(r).city;
        break;
      }
    }
    if (!dst_attachment.valid()) return out;
  } else {
    return out;
  }

  out.as_path = bgp_->as_path(src.asn, dst_asn);
  if (out.as_path.empty()) return out;

  out.one_way_delay_ms = src.access_delay_ms + dst_access_delay;
  RouterId cur = src.attachment;
  out.hops.push_back(RouterHop{cur, InterfaceId{}, LinkId{}});

  for (std::size_t i = 0; i + 1 < out.as_path.size(); ++i) {
    Asn a = out.as_path[i];
    Asn b = out.as_path[i + 1];
    std::uint64_t salt = 0x1000 + i;
    auto link = choose_interdomain(a, b, cur, dst_city, key, salt);
    if (!link) return out;  // invalid: AS adjacency without physical link
    const topo::Link& l = topo_->link(*link);
    RouterId exit_router = l.as_a == a ? topo_->iface(l.side_a).router
                                       : topo_->iface(l.side_b).router;
    RouterId entry_router = topo_->remote_router(*link, exit_router);
    if (!intra_as_segment(cur, exit_router, key, salt, out)) return out;
    out.links.push_back(*link);
    out.hops.push_back(
        RouterHop{entry_router, iface_on(*topo_, *link, entry_router), *link});
    out.one_way_delay_ms += l.prop_delay_ms;
    cur = entry_router;
  }
  if (!intra_as_segment(cur, dst_attachment, key, 0x9999, out)) {
    return out;
  }
  out.valid = true;
  return out;
}

}  // namespace netcong::route
