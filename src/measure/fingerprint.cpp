#include "measure/fingerprint.h"

#include <cstring>

#include "measure/corpus.h"
#include "sim/traffic.h"
#include "topo/topology.h"

namespace netcong::measure {

void Fingerprint::mix(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  mix(bits);
}

void Fingerprint::mix(std::string_view s) {
  mix(static_cast<std::uint64_t>(s.size()));
  for (unsigned char c : s) {
    h_ = (h_ ^ c) * 1099511628211ull;
  }
}

void mix_record(Fingerprint& fp, const route::RouterPath& p) {
  fp.mix(p.valid);
  fp.mix(static_cast<std::uint64_t>(p.as_path.size()));
  for (topo::Asn a : p.as_path) fp.mix(static_cast<std::uint64_t>(a));
  fp.mix(static_cast<std::uint64_t>(p.hops.size()));
  for (const route::RouterHop& h : p.hops) {
    fp.mix(static_cast<std::uint64_t>(h.router.value));
    fp.mix(static_cast<std::uint64_t>(h.in_iface.value));
    fp.mix(static_cast<std::uint64_t>(h.in_link.value));
  }
  fp.mix(static_cast<std::uint64_t>(p.links.size()));
  for (topo::LinkId l : p.links) fp.mix(static_cast<std::uint64_t>(l.value));
  fp.mix(p.one_way_delay_ms);
}

void mix_record(Fingerprint& fp, const NdtRecord& t) {
  fp.mix(t.test_id);
  fp.mix(static_cast<std::uint64_t>(t.client));
  fp.mix(static_cast<std::uint64_t>(t.server));
  fp.mix(t.utc_time_hours);
  fp.mix(t.download_mbps);
  fp.mix(t.upload_mbps);
  fp.mix(t.flow_rtt_ms);
  fp.mix(t.retrans_rate);
  fp.mix(static_cast<std::uint64_t>(t.congestion_signals));
  fp.mix(static_cast<std::uint64_t>(t.client_asn));
  fp.mix(static_cast<std::uint64_t>(t.server_asn));
  fp.mix(static_cast<std::uint64_t>(t.status));
  fp.mix(t.truncated);
  fp.mix(t.has_webstats);
  mix_record(fp, t.truth_path);
  fp.mix(static_cast<std::uint64_t>(t.truth_bottleneck.value));
  fp.mix(t.truth_access_limited);
}

void mix_record(Fingerprint& fp, const TracerouteRecord& tr) {
  fp.mix(static_cast<std::uint64_t>(tr.src_host));
  fp.mix(static_cast<std::uint64_t>(tr.dst.value));
  fp.mix(tr.utc_time_hours);
  fp.mix(tr.reached_dst);
  fp.mix(static_cast<std::uint64_t>(tr.hops.size()));
  for (const TraceHop& h : tr.hops) {
    fp.mix(static_cast<std::uint64_t>(h.ttl));
    fp.mix(h.responded);
    fp.mix(static_cast<std::uint64_t>(h.addr.value));
    fp.mix(h.rtt_ms);
    fp.mix(h.dns_name);
  }
  mix_record(fp, tr.truth);
}

std::uint64_t fingerprint(const std::vector<TracerouteRecord>& corpus) {
  Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(corpus.size()));
  for (const auto& tr : corpus) mix_record(fp, tr);
  return fp.value();
}

std::uint64_t observed_fingerprint(
    const std::vector<TracerouteRecord>& corpus) {
  Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(corpus.size()));
  for (const auto& tr : corpus) {
    fp.mix(static_cast<std::uint64_t>(tr.src_host));
    fp.mix(static_cast<std::uint64_t>(tr.dst.value));
    fp.mix(tr.utc_time_hours);
    fp.mix(tr.reached_dst);
    fp.mix(static_cast<std::uint64_t>(tr.hops.size()));
    for (const TraceHop& h : tr.hops) {
      fp.mix(static_cast<std::uint64_t>(h.ttl));
      fp.mix(h.responded);
      fp.mix(static_cast<std::uint64_t>(h.addr.value));
      fp.mix(h.rtt_ms);
      fp.mix(h.dns_name);
    }
  }
  return fp.value();
}

std::uint64_t truth_fingerprint(const std::vector<TracerouteRecord>& corpus) {
  Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(corpus.size()));
  for (const auto& tr : corpus) mix_record(fp, tr.truth);
  return fp.value();
}

std::uint64_t fingerprint_before(const CampaignResult& result,
                                 double cutoff_hours) {
  Fingerprint fp;
  std::uint64_t tests = 0;
  for (const auto& t : result.tests) {
    if (t.utc_time_hours < cutoff_hours) ++tests;
  }
  fp.mix(tests);
  for (const auto& t : result.tests) {
    if (t.utc_time_hours < cutoff_hours) mix_record(fp, t);
  }
  std::uint64_t traces = 0;
  for (const auto& tr : result.traceroutes) {
    if (tr.utc_time_hours < cutoff_hours) ++traces;
  }
  fp.mix(traces);
  for (const auto& tr : result.traceroutes) {
    if (tr.utc_time_hours < cutoff_hours) mix_record(fp, tr);
  }
  return fp.value();
}

std::uint64_t fingerprint(const CampaignResult& result) {
  Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(result.tests.size()));
  for (const auto& t : result.tests) mix_record(fp, t);
  fp.mix(static_cast<std::uint64_t>(result.traceroutes.size()));
  for (const auto& tr : result.traceroutes) mix_record(fp, tr);
  fp.mix(static_cast<std::uint64_t>(result.traceroutes_skipped_busy));
  fp.mix(static_cast<std::uint64_t>(result.traceroutes_skipped_cached));
  fp.mix(static_cast<std::uint64_t>(result.traceroutes_failed));
  for (const auto& [metric, value] : result.quality.rows()) {
    fp.mix(metric);
    fp.mix(static_cast<std::uint64_t>(value));
  }
  return fp.value();
}

std::uint64_t fingerprint(const ColumnarCampaignResult& result) {
  // Byte-for-byte the same sequence as fingerprint(CampaignResult): each
  // column read plays the role of the corresponding record field, the truth
  // refs resolve through the pool, and PTR names come from the topology
  // exactly as the classic record sink stored them.
  Fingerprint fp;
  const NdtCorpus& t = result.tests;
  fp.mix(static_cast<std::uint64_t>(t.size()));
  for (std::size_t i = 0; i < t.size(); ++i) {
    fp.mix(t.test_id[i]);
    fp.mix(static_cast<std::uint64_t>(t.client[i]));
    fp.mix(static_cast<std::uint64_t>(t.server[i]));
    fp.mix(t.utc_time_hours[i]);
    fp.mix(t.download_mbps[i]);
    fp.mix(t.upload_mbps[i]);
    fp.mix(t.flow_rtt_ms[i]);
    fp.mix(t.retrans_rate[i]);
    fp.mix(static_cast<std::uint64_t>(t.congestion_signals[i]));
    fp.mix(static_cast<std::uint64_t>(t.client_asn[i]));
    fp.mix(static_cast<std::uint64_t>(t.server_asn[i]));
    fp.mix(static_cast<std::uint64_t>(t.status[i]));
    fp.mix(t.truncated[i] != 0);
    fp.mix(t.has_webstats[i] != 0);
    mix_record(fp, result.paths.at(t.truth_path[i]));
    fp.mix(static_cast<std::uint64_t>(t.truth_bottleneck[i].value));
    fp.mix(t.truth_access_limited[i] != 0);
  }
  const TraceCorpus& tr = result.traceroutes;
  fp.mix(static_cast<std::uint64_t>(tr.size()));
  for (std::size_t i = 0; i < tr.size(); ++i) {
    fp.mix(static_cast<std::uint64_t>(tr.src_host[i]));
    fp.mix(static_cast<std::uint64_t>(tr.dst[i].value));
    fp.mix(tr.utc_time_hours[i]);
    fp.mix(tr.reached_dst[i] != 0);
    fp.mix(static_cast<std::uint64_t>(tr.hop_count[i]));
    const PackedTraceHop* span = tr.hops[i];
    for (std::uint32_t h = 0; h < tr.hop_count[i]; ++h) {
      const PackedTraceHop& hop = span[h];
      fp.mix(static_cast<std::uint64_t>(hop.ttl));
      fp.mix(hop.responded != 0);
      fp.mix(static_cast<std::uint64_t>(hop.addr.value));
      fp.mix(hop.rtt_ms);
      if (hop.responded != 0 && hop.iface.valid()) {
        fp.mix(std::string_view(result.topo->iface(hop.iface).dns_name));
      } else {
        fp.mix(std::string_view());
      }
    }
    mix_record(fp, result.paths.at(tr.truth[i]));
  }
  fp.mix(static_cast<std::uint64_t>(result.traceroutes_skipped_busy));
  fp.mix(static_cast<std::uint64_t>(result.traceroutes_skipped_cached));
  fp.mix(static_cast<std::uint64_t>(result.traceroutes_failed));
  for (const auto& [metric, value] : result.quality.rows()) {
    fp.mix(metric);
    fp.mix(static_cast<std::uint64_t>(value));
  }
  return fp.value();
}

std::uint64_t fingerprint(const gen::World& world) {
  Fingerprint fp;
  const topo::Topology& t = *world.topo;

  fp.mix(static_cast<std::uint64_t>(t.cities().size()));
  for (const auto& c : t.cities()) {
    fp.mix(c.name);
    fp.mix(c.lat);
    fp.mix(c.lon);
    fp.mix(static_cast<std::uint64_t>(c.utc_offset_hours));
    fp.mix(c.population_weight);
  }
  fp.mix(static_cast<std::uint64_t>(t.orgs().size()));
  for (const auto& o : t.orgs()) fp.mix(o.name);
  for (topo::Asn asn : t.all_asns()) {
    const topo::AsInfo& info = t.as_info(asn);
    fp.mix(static_cast<std::uint64_t>(asn));
    fp.mix(info.name);
    fp.mix(static_cast<std::uint64_t>(info.org.value));
    fp.mix(static_cast<std::uint64_t>(info.type));
  }
  fp.mix(static_cast<std::uint64_t>(t.routers().size()));
  for (const auto& r : t.routers()) {
    fp.mix(static_cast<std::uint64_t>(r.owner));
    fp.mix(static_cast<std::uint64_t>(r.city.value));
    fp.mix(static_cast<std::uint64_t>(r.role));
    fp.mix(r.name);
    fp.mix(static_cast<std::uint64_t>(r.mgmt_addr.value));
  }
  fp.mix(static_cast<std::uint64_t>(t.interfaces().size()));
  for (const auto& i : t.interfaces()) {
    fp.mix(static_cast<std::uint64_t>(i.addr.value));
    fp.mix(static_cast<std::uint64_t>(i.router.value));
    fp.mix(static_cast<std::uint64_t>(i.addr_owner));
    fp.mix(static_cast<std::uint64_t>(i.link.value));
    fp.mix(i.dns_name);
  }
  fp.mix(static_cast<std::uint64_t>(t.links().size()));
  for (const auto& l : t.links()) {
    fp.mix(static_cast<std::uint64_t>(l.side_a.value));
    fp.mix(static_cast<std::uint64_t>(l.side_b.value));
    fp.mix(static_cast<std::uint64_t>(l.kind));
    fp.mix(static_cast<std::uint64_t>(l.as_a));
    fp.mix(static_cast<std::uint64_t>(l.as_b));
    fp.mix(l.capacity_mbps);
    fp.mix(l.prop_delay_ms);
    fp.mix(l.via_ixp);
    // Traffic is part of the world: the load profile each link carries.
    const sim::LinkLoadProfile& p = world.traffic->profile(l.id);
    fp.mix(p.base_util);
    fp.mix(p.peak_util);
  }
  fp.mix(static_cast<std::uint64_t>(t.hosts().size()));
  for (const auto& h : t.hosts()) {
    fp.mix(static_cast<std::uint64_t>(h.kind));
    fp.mix(static_cast<std::uint64_t>(h.addr.value));
    fp.mix(static_cast<std::uint64_t>(h.asn));
    fp.mix(static_cast<std::uint64_t>(h.city.value));
    fp.mix(static_cast<std::uint64_t>(h.attachment.value));
    fp.mix(h.tier.down_mbps);
    fp.mix(h.tier.up_mbps);
    fp.mix(h.home_quality);
    fp.mix(h.access_delay_ms);
    fp.mix(h.label);
  }
  fp.mix(static_cast<std::uint64_t>(t.announced_prefixes().size()));
  for (const auto& [prefix, origin] : t.announced_prefixes()) {
    fp.mix(static_cast<std::uint64_t>(prefix.network.value));
    fp.mix(static_cast<std::uint64_t>(prefix.len));
    fp.mix(static_cast<std::uint64_t>(origin));
  }
  fp.mix(static_cast<std::uint64_t>(t.ixp_prefixes().size()));
  for (const auto& prefix : t.ixp_prefixes()) {
    fp.mix(static_cast<std::uint64_t>(prefix.network.value));
    fp.mix(static_cast<std::uint64_t>(prefix.len));
  }

  auto mix_hosts = [&fp](const std::vector<std::uint32_t>& ids) {
    fp.mix(static_cast<std::uint64_t>(ids.size()));
    for (std::uint32_t id : ids) fp.mix(static_cast<std::uint64_t>(id));
  };
  mix_hosts(world.mlab_servers);
  mix_hosts(world.speedtest_servers_2017);
  mix_hosts(world.speedtest_servers_2015);
  mix_hosts(world.ark_vps);
  mix_hosts(world.content_hosts);
  mix_hosts(world.clients);
  fp.mix(static_cast<std::uint64_t>(world.congested_links.size()));
  for (topo::LinkId l : world.congested_links) {
    fp.mix(static_cast<std::uint64_t>(l.value));
  }
  return fp.value();
}

}  // namespace netcong::measure
