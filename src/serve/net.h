#pragma once

// Framed TCP front-end for the ingest service (DESIGN.md §12). External
// producers connect to a loopback-style listener and stream codec frames;
// each valid frame becomes one IngestService::submit(). The socket is a
// hostile input: every malformed frame is classified with the codec's
// typed FrameError and counted — the daemon never crashes and never
// trusts a length it has not validated. A byte stream cannot be resynced
// after a bad frame, so the connection is closed after counting it.
//
// Backpressure maps onto the service's overflow policy: under kBlock a
// full queue blocks the connection thread in submit(), the kernel socket
// buffer fills, and the producer's send() stalls — TCP flow control *is*
// the backpressure. Under kDrop the event is counted dropped here and in
// the service, keeping the conserved accounting
//   frames_received = frames_ok + frames_rejected
//   frames_ok       = events_submitted + events_dropped
// that NetCounters::consistent() checks and fold_into() carries into the
// campaign-level sim::DataQuality report.
//
// Fault sites (sim/faults): kNetShortRead makes the server read a
// connection in 1-3 byte chunks (reassembly stress); kNetDisconnect makes
// FrameClient vanish mid-frame, which the server must count as one
// truncated frame and survive.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/codec.h"
#include "serve/service.h"
#include "sim/faults.h"
#include "util/result.h"

namespace netcong::serve {

struct NetConfig {
  // Connections beyond the cap are accepted and immediately closed
  // (counted), so a stuck fleet of producers cannot exhaust threads.
  std::size_t max_connections = 32;
  // Per-connection receive timeout; an idle connection is dropped.
  double read_timeout_s = 5.0;
  // Optional deterministic fault injector (site kNetShortRead). Must
  // outlive the listener.
  const sim::FaultInjector* faults = nullptr;
};

struct NetCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected_cap = 0;
  std::uint64_t connections_timed_out = 0;
  std::uint64_t frames_ok = 0;
  std::uint64_t rejected_bad_version = 0;
  std::uint64_t rejected_bad_kind = 0;
  std::uint64_t rejected_oversize = 0;
  std::uint64_t rejected_bad_checksum = 0;
  std::uint64_t rejected_bad_payload = 0;
  std::uint64_t rejected_truncated = 0;  // connection died mid-frame
  std::uint64_t events_submitted = 0;    // accepted by the service
  std::uint64_t events_dropped = 0;      // queue-full under kDrop / stopped

  std::uint64_t frames_rejected() const {
    return rejected_bad_version + rejected_bad_kind + rejected_oversize +
           rejected_bad_checksum + rejected_bad_payload + rejected_truncated;
  }
  std::uint64_t frames_received() const {
    return frames_ok + frames_rejected();
  }
  // The conserved-accounting invariant: no frame or event vanishes
  // unclassified between the socket and the queues.
  bool consistent() const {
    return frames_ok == events_submitted + events_dropped;
  }
  // Adds the socket-layer accounting to a campaign data-quality report.
  void fold_into(sim::DataQuality& quality) const;
};

// Accepts framed-event connections on loopback and feeds the service.
class FrameListener {
 public:
  // The service and injector must outlive the listener.
  FrameListener(IngestService& service, NetConfig config);
  ~FrameListener();
  FrameListener(const FrameListener&) = delete;
  FrameListener& operator=(const FrameListener&) = delete;

  // Binds 127.0.0.1:port (0 = kernel-assigned, see port()) and starts the
  // accept loop.
  util::Status start(std::uint16_t port);

  // The bound port (after start()).
  std::uint16_t port() const { return port_; }

  // Closes the listener and every live connection, then joins all
  // threads. Idempotent; the destructor calls it.
  void stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  NetCounters counters() const;

 private:
  void accept_loop();
  void handle_connection(int fd, std::uint64_t conn_id);
  void track(int fd, bool add);

  IngestService& service_;
  NetConfig config_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> live_fds_;
  std::atomic<std::size_t> active_{0};
  std::atomic<std::uint64_t> next_conn_id_{0};

  // One relaxed atomic per NetCounters field, snapshotted by counters().
  struct AtomicCounters;
  std::unique_ptr<AtomicCounters> ctr_;
};

// Producer side: connects to a FrameListener (or anything speaking the
// frame format) and sends one frame per event.
class FrameClient {
 public:
  // Optional injector enables kNetDisconnect: a send() may deliver only a
  // partial frame and close the socket, like a crashing producer.
  explicit FrameClient(const sim::FaultInjector* faults = nullptr);
  ~FrameClient();
  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  // host: dotted quad or "localhost".
  util::Status connect(const std::string& host, std::uint16_t port);
  bool connected() const { return fd_ >= 0; }

  util::Status send(const IngestEvent& event);

  // Ships arbitrary bytes as-is — the tests' tool for speaking garbage at
  // the listener.
  util::Status send_raw(const std::uint8_t* data, std::size_t n);

  void close();

  std::uint64_t events_sent() const { return sent_; }

 private:
  const sim::FaultInjector* faults_;
  int fd_ = -1;
  std::uint64_t sent_ = 0;
  std::uint64_t attempts_ = 0;
};

}  // namespace netcong::serve
