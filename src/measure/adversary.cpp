#include "measure/adversary.h"

#include <algorithm>

#include "measure/fingerprint.h"

namespace netcong::measure {

MisleadingStarsResult misleading_stars_corpus(
    const gen::World& world, const route::Forwarder& fwd,
    const sim::AdversaryScenario& scenario, std::uint32_t vp,
    const ArkCampaignOptions& options, util::Rng& rng) {
  MisleadingStarsResult out;
  out.cloaked_routers = scenario.cloaked_router_count();

  ArkCampaignOptions opts = options;
  opts.traceroute.adversary = &scenario;
  out.observed = ark_full_prefix_campaign(world, fwd, vp, opts, rng);

  // The split reading: every traversal of a cloaked router becomes its own
  // phantom router. Observed hops are untouched (the cloaked hop was a star
  // to begin with), only the ground truth moves.
  out.alternate = out.observed;
  std::uint32_t next_phantom = kPhantomRouterBase;
  for (TracerouteRecord& tr : out.alternate) {
    for (route::RouterHop& hop : tr.truth.hops) {
      if (scenario.router_cloaked(hop.router)) {
        hop.router = topo::RouterId(next_phantom++);
        ++out.cloaked_hops;
      }
    }
  }

  out.observed_fp_a = observed_fingerprint(out.observed);
  out.observed_fp_b = observed_fingerprint(out.alternate);
  out.truth_fp_a = truth_fingerprint(out.observed);
  out.truth_fp_b = truth_fingerprint(out.alternate);
  return out;
}

AdversaryCampaignTruth annotate_campaign(
    const sim::AdversaryScenario& scenario, const topo::Topology& topo,
    const CampaignResult& result) {
  AdversaryCampaignTruth truth;
  const sim::AdversaryConfig& cfg = scenario.config();
  truth.epoch_hours = cfg.epoch_hours;
  truth.churn_fraction = cfg.churn_fraction;
  truth.asym_fraction = cfg.asym_fraction;
  truth.withdrawn_links = scenario.withdrawn_links();
  for (topo::LinkId id : truth.withdrawn_links) {
    const topo::Link& l = topo.link(id);
    truth.withdrawn_addrs.emplace_back(topo.iface(l.side_a).addr,
                                       topo.iface(l.side_b).addr);
  }

  std::vector<std::uint64_t> pairs;
  pairs.reserve(result.tests.size());
  for (const NdtRecord& t : result.tests) {
    if (t.utc_time_hours < cfg.epoch_hours) {
      ++truth.tests_pre_epoch;
    } else {
      ++truth.tests_post_epoch;
    }
    pairs.push_back((static_cast<std::uint64_t>(t.server) << 32) |
                    topo.host(t.client).addr.value);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  truth.pairs_total = pairs.size();
  for (std::uint64_t p : pairs) {
    if (scenario.pair_churned(static_cast<std::uint32_t>(p >> 32),
                              topo::IpAddr(static_cast<std::uint32_t>(p)))) {
      ++truth.pairs_churned;
    }
  }
  return truth;
}

std::vector<std::pair<topo::IpAddr, topo::IpAddr>> detectable_withdrawn(
    const CampaignResult& result, const AdversaryCampaignTruth& truth) {
  std::vector<std::pair<topo::IpAddr, topo::IpAddr>> out;
  if (truth.withdrawn_addrs.empty()) return out;
  // Addresses seen by pre-epoch traceroutes.
  std::vector<std::uint32_t> seen;
  for (const TracerouteRecord& tr : result.traceroutes) {
    if (tr.utc_time_hours >= truth.epoch_hours) continue;
    for (const TraceHop& h : tr.hops) {
      if (h.responded) seen.push_back(h.addr.value);
    }
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  auto observed = [&seen](topo::IpAddr a) {
    return std::binary_search(seen.begin(), seen.end(), a.value);
  };
  for (const auto& [a, b] : truth.withdrawn_addrs) {
    if (observed(a) || observed(b)) out.emplace_back(a, b);
  }
  return out;
}

}  // namespace netcong::measure
