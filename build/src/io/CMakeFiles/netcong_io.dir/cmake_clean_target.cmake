file(REMOVE_RECURSE
  "libnetcong_io.a"
)
