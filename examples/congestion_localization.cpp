// Congestion localization end to end: run a crowdsourced NDT campaign over
// a synthetic month, infer congested interconnections two ways —
//  (a) the M-Lab-style simplified AS-level tomography of paper Section 3.1,
//  (b) rigorous binary network tomography over router-level paths
//      (Duffield-style, the approach the paper says the simplified method
//      approximates) —
// and score both against the generator's ground truth.
//
//   ./build/examples/congestion_localization

#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "core/as_tomography.h"
#include "core/diurnal.h"
#include "core/tomography.h"
#include "gen/workload.h"
#include "gen/world.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "sim/diurnal.h"
#include "sim/throughput.h"
#include "stats/timeseries.h"

int main() {
  using namespace netcong;

  gen::GeneratorConfig cfg = gen::GeneratorConfig::small();
  cfg.seed = 11;
  gen::World world = gen::generate_world(cfg);
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);
  sim::ThroughputModel model(*world.topo, *world.traffic);
  measure::Platform mlab("M-Lab", *world.topo, world.mlab_servers);

  util::Rng rng(3);
  gen::WorkloadConfig wl;
  wl.days = 14;
  wl.mean_tests_per_client = 10.0;
  auto schedule = gen::crowdsourced_schedule(world, world.clients, wl, rng);
  measure::NdtCampaign campaign(world, fwd, model, mlab,
                                measure::CampaignConfig{});
  auto result = campaign.run(schedule, rng);
  std::printf("campaign: %zu tests over %d days\n", result.tests.size(),
              wl.days);

  std::map<topo::Asn, std::string> isp_of;
  for (const auto& [name, asns] : world.isp_asns) {
    for (topo::Asn a : asns) isp_of[a] = name;
  }

  // ---------- (a) simplified AS-level tomography ----------
  auto source_of = [&](const measure::NdtRecord& t) {
    const auto& info = world.topo->as_info(t.server_asn);
    return info.type == topo::AsType::kTransit ? info.name : std::string();
  };
  auto isp_fn = [&](const measure::NdtRecord& t) {
    auto it = isp_of.find(t.client_asn);
    return it == isp_of.end() ? std::string() : it->second;
  };
  auto groups = core::build_diurnal_groups(result.tests, world, source_of,
                                           isp_fn);
  auto calls = core::as_level_tomography(groups, 0.35, 20);

  std::printf("\nsimplified AS-level tomography (threshold 35%% drop):\n");
  int tp = 0, fp = 0, fn = 0;
  for (const auto& call : calls) {
    topo::Asn src = topo::kInvalidAsn;
    for (topo::Asn a : world.topo->all_asns()) {
      if (world.topo->as_info(a).name == call.source) src = a;
    }
    bool truth = src != topo::kInvalidAsn &&
                 core::truth_pair_congested(world, src, call.isp);
    if (call.congestion_inferred && truth) ++tp;
    if (call.congestion_inferred && !truth) ++fp;
    if (!call.congestion_inferred && truth && call.tests > 200) ++fn;
    if (call.congestion_inferred || truth) {
      std::printf("  %-8s -> %-12s drop %5.1f%%  inferred %-3s truth %-3s "
                  "(%zu tests%s)\n",
                  call.source.c_str(), call.isp.c_str(),
                  100 * call.relative_drop,
                  call.congestion_inferred ? "YES" : "no",
                  truth ? "YES" : "no", call.tests,
                  call.usable ? "" : "; too few off-peak samples to call");
    }
  }
  std::printf("  AS-pair level: %d true positives, %d false positives, "
              "%d misses (well-sampled pairs)\n",
              tp, fp, fn);

  // ---------- (b) binary tomography over router-level paths ----------
  // Binary tomography assumes link states are FIXED across the observation
  // set, so observations must come from one narrow time window — congestion
  // is a peak-hour state, and (regional effects, paper Section 4.3) a link
  // congested at 21:00 Eastern is three time zones away from peak for a
  // West-coast test at the same instant. We take a 2-hour UTC window
  // (East-coast evening) and score against the links that were actually
  // saturated *during that window*. Throughput is a poor good/bad label —
  // a low-tier client can be perfectly happy behind a saturated link — so
  // labels come from the tier-independent retransmission rate, with an
  // ambiguous middle band discarded.
  const double kWindowLo = 1.0, kWindowHi = 3.0;  // UTC hours
  std::vector<core::PathObservation> obs;
  std::set<std::uint32_t> observed_links;
  for (const auto& t : result.tests) {
    if (!t.truth_path.valid) continue;
    double utc = std::fmod(t.utc_time_hours, 24.0);
    if (utc < kWindowLo || utc > kWindowHi) continue;
    bool bad = t.retrans_rate > 0.03;
    bool good = t.retrans_rate < 0.005;
    if (!bad && !good) continue;  // ambiguous: discard
    core::PathObservation o;
    // Candidate set = interdomain links only. An internal link next to a
    // congested border crosses exactly the same observations and is
    // indistinguishable from it; excluding internal links is precisely the
    // paper's Assumption 1, applied here as domain knowledge.
    for (topo::LinkId l : t.truth_path.links) {
      if (world.topo->link(l).kind == topo::LinkKind::kInterdomain) {
        o.links.push_back(l);
      }
    }
    o.bad = bad;
    for (auto l : o.links) observed_links.insert(l.value);
    obs.push_back(std::move(o));
  }
  auto tomo = greedy_binary_tomography(obs);
  // Truth: links saturated in the window AND crossed by some observation.
  std::vector<topo::LinkId> reachable_truth;
  for (topo::LinkId l : world.congested_links) {
    if (!observed_links.count(l.value)) continue;
    if (world.traffic->utilization(l, 2.0) >= 0.99) {
      reachable_truth.push_back(l);
    }
  }
  auto score = core::score_tomography(tomo.bad_links, reachable_truth);
  std::printf("\nbinary tomography over %zu observations in the UTC "
              "%.0f-%.0f window:\n",
              obs.size(), kWindowLo, kWindowHi);
  std::printf("  inferred %zu bad links; %zu links were saturated during "
              "the window on observed paths\n",
              score.inferred, score.truth);
  std::printf("  precision %.2f, recall %.2f%s\n", score.precision(),
              score.recall(),
              tomo.consistent ? "" : " (some observations inconsistent)");
  std::printf("\nNote: binary tomography needs the router-level paths the "
              "paper says platforms should collect; the AS-level shortcut "
              "only names AS pairs, and only under assumptions 1-3.\n");
  return 0;
}
