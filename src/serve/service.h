#pragma once

// Always-on ingest service (DESIGN.md §11): bounded MPSC queues feed sharded
// worker threads, each owning an incremental evidence store (MapItEvidence
// for traceroutes, NdtStreamStats for tests). snapshot() quiesces producers,
// drains the queues, merges the per-shard stores in shard order, and runs
// the same inference tail as a batch run (MapItEvidence::infer +
// borders_from_mapit), so a snapshot after N consumed events is bit-identical
// to run_mapit/run_bdrmap over the same N-event log prefix — the equivalence
// the ingest.snapshot_equals_batch property enforces for every shard count.
//
// Why sharding is sound: both evidence stores are commutative monoids keyed
// by pure functions of single events, and FlatMap's canonical layout makes
// the merged table a pure function of the event *set*. Routing (seq % shards)
// therefore only changes which shard holds which partial sum, never the
// merged result.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "infer/bdrmap.h"
#include "infer/mapit.h"
#include "obs/metrics.h"
#include "serve/event.h"
#include "serve/ndt_stats.h"
#include "serve/queue.h"

namespace netcong::serve {

struct ServeConfig {
  // 0 = one shard per hardware thread (at least 1).
  std::size_t shards = 0;
  std::size_t queue_capacity = 1024;
  OverflowPolicy policy = OverflowPolicy::kBlock;
  infer::MapItConfig mapit;
  // The vantage point's ASN; snapshots include a bdrmap border map when the
  // relationship table and alias resolver have been provided.
  topo::Asn vp_as = 0;
  // Test knob: each worker sleeps this long per consumed event, making a
  // slow consumer (and thus backpressure / drops) deterministic to provoke.
  std::uint32_t consume_delay_us = 0;
};

// Service-wide accounting. Invariant (checked by the
// ingest.drop_policy_accounting property): submitted = enqueued + dropped,
// and after flush() consumed == enqueued.
struct ServiceCounters {
  std::uint64_t submitted = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t consumed = 0;
  std::uint64_t dropped = 0;
};

struct ServiceSnapshot {
  std::uint64_t events_consumed = 0;
  std::uint64_t traces = 0;
  std::uint64_t ndt_tests = 0;
  infer::MapItResult mapit;
  // Present when relationships/aliases were wired in (set_relationships).
  std::optional<infer::BdrmapResult> borders;
  NdtStreamStats ndt;
  // Wall time spent inside snapshot(): quiesce + drain + merge + infer.
  // This is the staleness of the freshest data the snapshot can contain.
  double snapshot_ms = 0.0;
  // Deterministic digest of the full snapshot (evidence + inference), for
  // the batch-equivalence proof and for cheap cross-run comparison.
  std::uint64_t fingerprint = 0;
};

class IngestService {
 public:
  // The referenced tables must outlive the service.
  IngestService(const infer::Ip2As& ip2as, const infer::OrgMap& orgs,
                ServeConfig config);
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  // Optional: enables the bdrmap stage of snapshots. Must be called before
  // start(); pointers must outlive the service.
  void set_relationships(const topo::RelationshipTable* rels,
                         const infer::AliasResolver* aliases);

  // Spawns the shard workers. Idempotent.
  void start();

  // Routes one event to its shard. Returns false when the event was dropped
  // (kDrop policy, full queue) or the service is stopped. Thread-safe; any
  // number of producers may call concurrently.
  bool submit(IngestEvent event);

  // Blocks until every enqueued event has been consumed. Queues stay open;
  // producers blocked in submit() under kBlock may refill them afterwards.
  void flush();

  // Quiesces producers, drains all queues, merges the per-shard stores and
  // runs inference. The service keeps running; subsequent submits continue
  // to accumulate on top of the same evidence.
  ServiceSnapshot snapshot();

  // Closes the queues and joins the workers. Idempotent; the destructor
  // calls it. After stop(), submit() returns false.
  void stop();

  bool running() const { return running_; }
  std::size_t shards() const { return shards_.size(); }
  ServiceCounters counters() const;
  const ServeConfig& config() const { return config_; }

 private:
  struct Shard {
    explicit Shard(std::size_t capacity, OverflowPolicy policy)
        : queue(capacity, policy) {}
    BoundedQueue<IngestEvent> queue;
    std::thread worker;
    // Written only by the worker thread; read under quiescence (flush drains
    // the queue and a consumed-count barrier orders these writes).
    infer::MapItEvidence mapit;
    NdtStreamStats ndt;
    std::uint64_t ndt_tests = 0;
    obs::Gauge depth_gauge;
  };

  void worker_loop(Shard& shard);

  const infer::Ip2As& ip2as_;
  const infer::OrgMap& orgs_;
  const topo::RelationshipTable* rels_ = nullptr;
  const infer::AliasResolver* aliases_ = nullptr;
  ServeConfig config_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<bool> running_{false};
  // submit() holds this shared; snapshot() holds it exclusive while it
  // drains, so no producer can interleave new events mid-snapshot.
  std::shared_mutex gate_;

  obs::Counter enqueued_ctr_;
  obs::Counter consumed_ctr_;
  obs::Counter dropped_ctr_;
  obs::Counter snapshots_ctr_;
  obs::Histogram snapshot_ms_hist_;
};

// Digest of an (evidence, inference) snapshot; also used by the property
// family to fingerprint a batch run for comparison.
std::uint64_t snapshot_fingerprint(const ServiceSnapshot& snap);

}  // namespace netcong::serve
