#include "stats/bootstrap.h"

#include <algorithm>
#include <limits>

#include "stats/descriptive.h"

namespace netcong::stats {

ConfidenceInterval bootstrap_ci(
    const std::vector<double>& xs,
    const std::function<double(const std::vector<double>&)>& statistic,
    util::Rng& rng, int resamples, double level) {
  ConfidenceInterval ci;
  if (xs.empty()) {
    ci.point = ci.lo = ci.hi = std::numeric_limits<double>::quiet_NaN();
    return ci;
  }
  ci.point = statistic(xs);
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> resample(xs.size());
  for (int r = 0; r < resamples; ++r) {
    for (auto& v : resample) {
      v = xs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1))];
    }
    stats.push_back(statistic(resample));
  }
  double alpha = (1.0 - level) / 2.0;
  ci.lo = percentile(stats, alpha * 100.0);
  ci.hi = percentile(std::move(stats), (1.0 - alpha) * 100.0);
  return ci;
}

ConfidenceInterval bootstrap_median_ci(const std::vector<double>& xs,
                                       util::Rng& rng, int resamples,
                                       double level) {
  return bootstrap_ci(
      xs, [](const std::vector<double>& v) { return median(v); }, rng,
      resamples, level);
}

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& xs,
                                     util::Rng& rng, int resamples,
                                     double level) {
  return bootstrap_ci(
      xs, [](const std::vector<double>& v) { return mean(v); }, rng, resamples,
      level);
}

}  // namespace netcong::stats
