#include "stats/timeseries.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace netcong::stats {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Iterates hours in [from, to] inclusive, wrapping midnight when from > to.
template <typename Fn>
void for_hours(int from, int to, Fn&& fn) {
  assert(from >= 0 && from < 24 && to >= 0 && to < 24);
  int h = from;
  while (true) {
    fn(h);
    if (h == to) break;
    h = (h + 1) % 24;
  }
}
}  // namespace

void HourlySeries::add(double hour_of_day, double value) {
  int h = static_cast<int>(hour_of_day);
  assert(h >= 0 && h < 24);
  bins_[static_cast<std::size_t>(h)].samples.push_back(value);
}

const std::vector<double>& HourlySeries::bin(int hour) const {
  assert(hour >= 0 && hour < 24);
  return bins_[static_cast<std::size_t>(hour)].samples;
}

std::size_t HourlySeries::total_count() const {
  std::size_t n = 0;
  for (const auto& b : bins_) n += b.samples.size();
  return n;
}

HourlySummary HourlySeries::summarize() const {
  HourlySummary s;
  for (int h = 0; h < 24; ++h) {
    const auto& xs = bins_[static_cast<std::size_t>(h)].samples;
    s.mean[static_cast<std::size_t>(h)] = mean(xs);
    s.stddev[static_cast<std::size_t>(h)] = stddev(xs);
    s.median[static_cast<std::size_t>(h)] = median(xs);
    s.count[static_cast<std::size_t>(h)] = xs.size();
  }
  return s;
}

double HourlySeries::median_over_hours(int from, int to) const {
  std::vector<double> all;
  for_hours(from, to, [&](int h) {
    const auto& xs = bin(h);
    all.insert(all.end(), xs.begin(), xs.end());
  });
  return median(std::move(all));
}

double HourlySeries::mean_over_hours(int from, int to) const {
  std::vector<double> all;
  for_hours(from, to, [&](int h) {
    const auto& xs = bin(h);
    all.insert(all.end(), xs.begin(), xs.end());
  });
  return mean(all);
}

std::size_t HourlySeries::count_over_hours(int from, int to) const {
  std::size_t n = 0;
  for_hours(from, to, [&](int h) { n += bin(h).size(); });
  return n;
}

DiurnalComparison compare_peak_offpeak(const HourlySeries& series,
                                       int peak_from, int peak_to,
                                       int offpeak_from, int offpeak_to) {
  DiurnalComparison c;
  c.peak_median = series.median_over_hours(peak_from, peak_to);
  c.offpeak_median = series.median_over_hours(offpeak_from, offpeak_to);
  c.peak_count = series.count_over_hours(peak_from, peak_to);
  c.offpeak_count = series.count_over_hours(offpeak_from, offpeak_to);
  if (c.peak_count == 0 || c.offpeak_count == 0 || c.offpeak_median == 0.0) {
    c.relative_drop = kNaN;
  } else {
    c.relative_drop = (c.offpeak_median - c.peak_median) / c.offpeak_median;
  }
  return c;
}

}  // namespace netcong::stats
