#pragma once

// Nonparametric bootstrap confidence intervals, used to quantify the
// statistical weight of sparse crowdsourced samples (paper Section 6.1:
// "fewer than 20 samples in some cases").

#include <functional>
#include <vector>

#include "util/rng.h"

namespace netcong::stats {

struct ConfidenceInterval {
  double point = 0.0;  // statistic on the original sample
  double lo = 0.0;
  double hi = 0.0;
};

// Percentile-method bootstrap CI for an arbitrary statistic.
// `level` is e.g. 0.95. Returns NaNs if xs is empty.
ConfidenceInterval bootstrap_ci(
    const std::vector<double>& xs,
    const std::function<double(const std::vector<double>&)>& statistic,
    util::Rng& rng, int resamples = 1000, double level = 0.95);

ConfidenceInterval bootstrap_median_ci(const std::vector<double>& xs,
                                       util::Rng& rng, int resamples = 1000,
                                       double level = 0.95);

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& xs,
                                     util::Rng& rng, int resamples = 1000,
                                     double level = 0.95);

}  // namespace netcong::stats
