#include "measure/ndt.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace netcong::measure {

namespace {
// The NDT server's data port (constant across tests; the client side's
// ephemeral port carries the ECMP bucket).
constexpr std::uint16_t kNdtServerPort = 3001;

// Disjoint fork-stream families, one per campaign phase, so a draw in one
// phase can never shift another phase's randomness. Ids stay far below 2^40.
constexpr std::uint64_t kStreamRequest = 1ull << 40;
constexpr std::uint64_t kStreamTest = 2ull << 40;
constexpr std::uint64_t kStreamTrace = 3ull << 40;
constexpr std::uint64_t kStreamProbe = 4ull << 40;

// Campaign instrumentation. Counters are bumped only from the serial
// phases (planning and the accounting sweep), never inside parallel_for
// bodies, so enabling metrics cannot perturb the parallel phases at all —
// the instrumented campaign is bit-identical to the uninstrumented one by
// construction, and the hot loops pay nothing.
struct CampaignMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter runs = reg.counter("campaign.runs");
  obs::Counter attempted = reg.counter("campaign.tests_attempted");
  obs::Counter completed = reg.counter("campaign.tests_completed");
  obs::Counter aborted = reg.counter("campaign.tests_aborted");
  obs::Counter unserved = reg.counter("campaign.tests_unserved");
  obs::Counter failed = reg.counter("campaign.tests_failed");
  obs::Counter truncated = reg.counter("campaign.tests_truncated");
  obs::Counter retried = reg.counter("campaign.tests_retried");
  obs::Counter retry_attempts = reg.counter("campaign.retry_attempts");
  obs::Counter webstats_dropped = reg.counter("campaign.webstats_dropped");
  obs::Counter tr_completed = reg.counter("campaign.traceroutes_completed");
  obs::Counter tr_busy = reg.counter("campaign.traceroutes_skipped_busy");
  obs::Counter tr_cached = reg.counter("campaign.traceroutes_skipped_cached");
  obs::Counter tr_failed = reg.counter("campaign.traceroutes_failed");
  obs::Counter tr_crashed = reg.counter("campaign.traceroutes_lost_crash");
  obs::Gauge tests_per_sec = reg.gauge("campaign.tests_per_sec");
  obs::Histogram download =
      reg.histogram("campaign.download_mbps",
                    {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
};
const CampaignMetrics& campaign_metrics() {
  static const CampaignMetrics m;
  return m;
}
}  // namespace

const char* ndt_status_name(NdtStatus status) {
  switch (status) {
    case NdtStatus::kCompleted: return "completed";
    case NdtStatus::kAborted: return "aborted";
    case NdtStatus::kUnserved: return "unserved";
    case NdtStatus::kFailed: return "failed";
  }
  return "?";
}

NdtCampaign::NdtCampaign(const gen::World& world, const route::Forwarder& fwd,
                         const sim::ThroughputModel& model,
                         const Platform& platform, CampaignConfig config)
    : world_(&world),
      fwd_(&fwd),
      model_(&model),
      platform_(&platform),
      config_(config) {}

NdtRecord NdtCampaign::run_single(std::uint32_t client, std::uint32_t server,
                                  double utc_time_hours,
                                  std::uint64_t test_id,
                                  util::Rng& rng) const {
  const topo::Topology& topo = *world_->topo;
  NdtRecord rec;
  rec.test_id = test_id;
  rec.client = client;
  rec.server = server;
  rec.utc_time_hours = utc_time_hours;
  rec.client_asn = topo.host(client).asn;
  rec.server_asn = topo.host(server).asn;

  // Downstream: data flows server -> client; the path is computed from the
  // server, matching the direction M-Lab's server-side traceroute sees.
  int bucket = static_cast<int>(
      rng.uniform_int(0, std::max(config_.ecmp_buckets, 1) - 1));
  route::FlowKey key = route::PathCache::ecmp_key(
      topo.host(server).addr, topo.host(client).addr, kNdtServerPort, bucket);
  route::RouterPath down = cache_ ? cache_->path(server, key.dst, key)
                                  : fwd_->path(server, key.dst, key);
  rec.truth_path = down;
  if (!down.valid) return rec;

  sim::ThroughputEstimate est = model_->estimate(
      down, topo.host(client), topo.host(server), utc_time_hours, rng);
  rec.download_mbps = est.goodput_mbps;
  rec.flow_rtt_ms = est.flow_rtt_ms;
  rec.retrans_rate = est.retrans_rate;
  rec.congestion_signals = est.congestion_signals;
  rec.truth_bottleneck = est.bottleneck;
  rec.truth_access_limited = est.access_limited;

  // Upstream: bounded by the client's upload tier; the network leg reuses
  // the downstream estimate (the reverse path may differ in reality, but
  // NDT upload is almost always access-limited, which this preserves).
  rec.upload_mbps =
      std::min(topo.host(client).tier.up_mbps * topo.host(client).home_quality,
               est.goodput_mbps);
  return rec;
}

CampaignResult NdtCampaign::run(const std::vector<gen::TestRequest>& schedule,
                                util::Rng& rng) const {
  obs::Span run_span("campaign.run");
  const CampaignMetrics& metrics = campaign_metrics();
  metrics.runs.inc();
  CampaignResult out;
  const bool faulted = faults_ != nullptr && faults_->enabled();
  const sim::FaultConfig* fc = faulted ? &faults_->config() : nullptr;

  // RNG discipline: every stochastic decision draws from a generator forked
  // off `root` by a stable id (request index or test id), never from one
  // shared sequential stream — and every *fault* decision draws from the
  // injector's (site, item) streams. Each phase's draws are therefore
  // independent of the other phases and of how the parallel phase is
  // scheduled, making the campaign output bit-identical for any worker
  // count, with or without faults.
  const util::Rng root = rng.fork("ndt-campaign");

  // Phase 1 (sequential, cheap): expand requests into a flat test plan.
  // Under faults, a chosen server that is down triggers the client retry
  // policy: bounded attempts against the next-nearest servers, each after a
  // deterministic backoff. A test with no reachable server is planned as
  // unserved — attempted, classified, never silently dropped.
  struct Planned {
    std::uint32_t client = 0;
    std::uint32_t server = 0;
    double when = 0.0;
    std::uint64_t id = 0;
    NdtStatus status = NdtStatus::kCompleted;  // kCompleted = "to run"
  };
  std::vector<Planned> plan;
  plan.reserve(schedule.size() *
               static_cast<std::size_t>(
                   std::max(config_.servers_per_request, 1)));
  std::uint64_t next_id = 1;
  std::optional<obs::Span> phase_span;
  phase_span.emplace("campaign.plan");
  for (std::size_t r = 0; r < schedule.size(); ++r) {
    const gen::TestRequest& req = schedule[r];
    util::Rng req_rng = root.fork(kStreamRequest + r);
    std::vector<std::uint32_t> servers;
    if (config_.servers_per_request <= 1) {
      servers.push_back(platform_->select_server(req.client, req_rng));
    } else {
      servers = platform_->select_servers_region(
          req.client, config_.servers_per_request, req_rng);
    }
    double when = req.utc_time_hours;
    for (std::uint32_t server : servers) {
      Planned p{req.client, server, when, next_id++, NdtStatus::kCompleted};
      if (faulted && faults_->server_down(p.server, p.when)) {
        util::Rng backoff_rng =
            faults_->stream(sim::FaultSite::kRetryBackoff, p.id);
        std::vector<std::uint32_t> ladder =
            platform_->nearest_servers(p.client, fc->max_retries + 4);
        bool served = false;
        std::size_t ladder_pos = 0;
        for (int attempt = 1; attempt <= fc->max_retries; ++attempt) {
          ++out.quality.retry_attempts;
          p.when += fc->backoff_base_s * attempt *
                    backoff_rng.uniform(0.75, 1.5) / 3600.0;
          // Next-nearest server not yet tried.
          while (ladder_pos < ladder.size() &&
                 ladder[ladder_pos] == p.server) {
            ++ladder_pos;
          }
          if (ladder_pos >= ladder.size()) break;
          std::uint32_t candidate = ladder[ladder_pos++];
          if (!faults_->server_down(candidate, p.when)) {
            p.server = candidate;
            served = true;
            break;
          }
        }
        if (served) {
          ++out.quality.tests_retried;
        } else {
          p.status = NdtStatus::kUnserved;
        }
      }
      plan.push_back(p);
      when += config_.ndt_duration_s / 3600.0;
    }
  }

  // Phase 2 (parallel): simulate every runnable test. Each slot is written
  // by exactly one iteration and each test's randomness comes from a fork
  // on its id; fault draws come from the injector's per-site streams. An
  // iteration never throws out of the loop — internal errors classify the
  // record as kFailed instead.
  const double dur_h = config_.ndt_duration_s / 3600.0;
  out.tests.resize(plan.size());
  phase_span.emplace("campaign.simulate");
  const auto simulate_start = std::chrono::steady_clock::now();
  util::parallel_for(plan.size(), config_.threads, [&](std::size_t i) {
    const Planned& p = plan[i];
    NdtRecord& rec = out.tests[i];
    rec.test_id = p.id;
    rec.client = p.client;
    rec.server = p.server;
    rec.utc_time_hours = p.when;
    rec.client_asn = world_->topo->host(p.client).asn;
    rec.server_asn = world_->topo->host(p.server).asn;
    rec.status = p.status;
    if (p.status != NdtStatus::kCompleted) return;  // unserved stub

    if (faulted &&
        (faults_->fires(sim::FaultSite::kNdtAbort, p.id, fc->ndt_abort_prob) ||
         faults_->server_down(p.server, p.when + dur_h))) {
      // Abort fault, or the server flapped away mid-test.
      rec.status = NdtStatus::kAborted;
      return;
    }
    try {
      util::Rng test_rng = root.fork(kStreamTest + p.id);
      rec = run_single(p.client, p.server, p.when, p.id, test_rng);
    } catch (...) {
      rec.status = NdtStatus::kFailed;
      return;
    }
    if (!faulted) return;
    util::Rng trunc_rng = faults_->stream(sim::FaultSite::kNdtTruncate, p.id);
    if (trunc_rng.chance(fc->ndt_truncate_prob)) {
      // Throughput measured on a partial transfer: biased by slow-start
      // weight or a missed late dip, in either direction.
      rec.truncated = true;
      rec.download_mbps *= trunc_rng.uniform(0.5, 1.1);
    }
    if (faults_->fires(sim::FaultSite::kWebStatsDrop, p.id,
                       fc->webstats_drop_prob)) {
      rec.has_webstats = false;
      rec.flow_rtt_ms = 0.0;
      rec.retrans_rate = 0.0;
    }
  });

  // Serial accounting sweep over the per-slot statuses (the parallel phase
  // writes no shared counters; metrics are bumped here too, so the hot loop
  // stays untouched even with the registry enabled).
  const double simulate_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    simulate_start)
          .count();
  phase_span.emplace("campaign.account");
  out.quality.tests_attempted = plan.size();
  const bool metrics_on = metrics.reg.enabled();
  for (const NdtRecord& rec : out.tests) {
    switch (rec.status) {
      case NdtStatus::kCompleted:
        ++out.quality.tests_completed;
        if (rec.truncated) ++out.quality.tests_truncated;
        if (!rec.has_webstats) {
          ++out.quality.webstats_dropped;
          out.quality.fields_dropped += 2;  // flow_rtt_ms + retrans_rate
        }
        if (metrics_on) metrics.download.observe(rec.download_mbps);
        break;
      case NdtStatus::kAborted: ++out.quality.tests_aborted; break;
      case NdtStatus::kUnserved: ++out.quality.tests_unserved; break;
      case NdtStatus::kFailed: ++out.quality.tests_failed; break;
    }
  }
  metrics.attempted.inc(out.quality.tests_attempted);
  metrics.completed.inc(out.quality.tests_completed);
  metrics.aborted.inc(out.quality.tests_aborted);
  metrics.unserved.inc(out.quality.tests_unserved);
  metrics.failed.inc(out.quality.tests_failed);
  metrics.truncated.inc(out.quality.tests_truncated);
  metrics.retried.inc(out.quality.tests_retried);
  metrics.retry_attempts.inc(out.quality.retry_attempts);
  metrics.webstats_dropped.inc(out.quality.webstats_dropped);
  if (simulate_s > 0.0) {
    metrics.tests_per_sec.set(static_cast<double>(plan.size()) / simulate_s);
  }

  // Phase 3a (sequential, cheap): the server-side traceroute daemons'
  // scheduling. A traceroute toward the client is skipped when the
  // single-threaded daemon is busy, when it traced this client recently
  // (cache), when the collection plainly fails (Section 4.1), or — under
  // faults — when the daemon crashes, which also keeps it down for the
  // restart delay. The busy/cache state is time-ordered per server, so this
  // pass stays serial and deterministic. Only the *decision* is made here —
  // the daemon's occupancy depends on a drawn trace duration, never on the
  // trace's contents — so the simulation of the selected traceroutes can
  // run in parallel afterwards. Only completed tests reach the daemon.
  phase_span.emplace("campaign.trace_schedule");
  std::unordered_map<std::uint32_t, double> tracer_busy_until;
  std::unordered_map<std::uint64_t, double> last_traced;
  std::vector<std::size_t> traced;  // indices into plan, in time order
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const Planned& p = plan[i];
    if (out.tests[i].status != NdtStatus::kCompleted) continue;
    util::Rng tr_rng = root.fork(kStreamTrace + p.id);
    double tr_start = p.when + config_.ndt_duration_s / 3600.0;
    double& busy = tracer_busy_until[p.server];
    std::uint64_t cache_key =
        (static_cast<std::uint64_t>(p.server) << 32) | p.client;
    auto cached = last_traced.find(cache_key);
    if (cached != last_traced.end() &&
        tr_start - cached->second <
            config_.traceroute_cache_minutes / 60.0) {
      ++out.traceroutes_skipped_cached;
    } else if (busy > tr_start) {
      ++out.traceroutes_skipped_busy;
      ++out.quality.traceroutes_lost_busy;
    } else if (faulted && faults_->fires(sim::FaultSite::kTracerouteCrash,
                                         p.id, fc->daemon_crash_prob)) {
      // Daemon crash: the due trace is lost and the daemon restarts after a
      // delay, so the next traces in the window get busy-skipped.
      busy = tr_start + fc->daemon_restart_s / 3600.0;
      ++out.quality.traceroutes_lost_crash;
    } else if (tr_rng.chance(config_.traceroute_failure_prob)) {
      ++out.traceroutes_failed;
      ++out.quality.traceroutes_lost_failed;
    } else {
      double dur_s = tr_rng.uniform(config_.traceroute_min_s,
                                    config_.traceroute_max_s);
      busy = tr_start + dur_s / 3600.0;
      last_traced[cache_key] = tr_start;
      traced.push_back(i);
      if (faulted && faults_->fires(sim::FaultSite::kProbeLoss, p.id,
                                    fc->probe_loss_prob)) {
        ++out.quality.traceroutes_degraded;
      }
    }
  }
  out.quality.traceroutes_suppressed_cached = out.traceroutes_skipped_cached;
  out.quality.traceroutes_completed = traced.size();
  out.quality.traceroutes_scheduled =
      traced.size() + out.quality.traceroutes_lost_busy +
      out.quality.traceroutes_lost_failed + out.quality.traceroutes_lost_crash;
  metrics.tr_completed.inc(out.quality.traceroutes_completed);
  metrics.tr_busy.inc(out.quality.traceroutes_lost_busy);
  metrics.tr_cached.inc(out.quality.traceroutes_suppressed_cached);
  metrics.tr_failed.inc(out.quality.traceroutes_lost_failed);
  metrics.tr_crashed.inc(out.quality.traceroutes_lost_crash);

  // Phase 3b (parallel): simulate the selected traceroutes. Probe artifacts
  // (stars, silent clients, missing PTRs) draw from their own fork stream,
  // keyed on the test id, so the records are independent of worker count
  // and of the scheduling draws above. A trace that drew the probe-loss
  // fault runs with an elevated star probability (a lossy probe path).
  out.traceroutes.resize(traced.size());
  phase_span.emplace("campaign.trace_simulate");
  util::parallel_for(traced.size(), config_.threads, [&](std::size_t t) {
    const Planned& p = plan[traced[t]];
    util::Rng probe_rng = root.fork(kStreamProbe + p.id);
    double tr_start = p.when + config_.ndt_duration_s / 3600.0;
    TracerouteOptions opts = config_.traceroute;
    if (faulted && faults_->fires(sim::FaultSite::kProbeLoss, p.id,
                                  fc->probe_loss_prob)) {
      opts.star_prob =
          std::min(0.9, opts.star_prob + fc->probe_loss_extra_star);
    }
    out.traceroutes[t] = run_traceroute(
        *world_->topo, *fwd_, p.server, world_->topo->host(p.client).addr,
        tr_start, opts, probe_rng, cache_);
  });
  return out;
}

}  // namespace netcong::measure
