// Determinism of the parallel campaign engine: the full CampaignResult —
// every test record, every traceroute hop, every skip counter — must be
// byte-identical whatever the worker count, and identical with or without
// a PathCache attached.

#include <gtest/gtest.h>

#include "gen/workload.h"
#include "helpers.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "route/path_cache.h"
#include "sim/faults.h"
#include "sim/throughput.h"

namespace netcong::measure {
namespace {

using gen::World;

struct Stack {
  explicit Stack(const World& w)
      : world(w),
        bgp(*w.topo),
        fwd(*w.topo, bgp),
        model(*w.topo, *w.traffic),
        mlab("mlab", *w.topo, w.mlab_servers) {}
  const World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  Platform mlab;
};

Stack& stack() {
  static Stack s(test::tiny_world());
  return s;
}

// A dense multi-client schedule exercising every traceroute outcome
// (run, busy-skip, cache-skip, failure).
std::vector<gen::TestRequest> dense_schedule() {
  Stack& s = stack();
  std::vector<gen::TestRequest> schedule;
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < s.world.clients.size(); ++i) {
      schedule.push_back(
          {s.world.clients[i],
           10.0 + round * 0.05 + static_cast<double>(i) * 0.003});
    }
  }
  return schedule;
}

void expect_paths_equal(const route::RouterPath& a, const route::RouterPath& b) {
  ASSERT_EQ(a.valid, b.valid);
  ASSERT_EQ(a.as_path, b.as_path);
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i], b.links[i]);
  }
  ASSERT_EQ(a.hops.size(), b.hops.size());
  for (std::size_t i = 0; i < a.hops.size(); ++i) {
    EXPECT_EQ(a.hops[i].router, b.hops[i].router);
    EXPECT_EQ(a.hops[i].in_iface, b.hops[i].in_iface);
    EXPECT_EQ(a.hops[i].in_link, b.hops[i].in_link);
  }
  EXPECT_DOUBLE_EQ(a.one_way_delay_ms, b.one_way_delay_ms);
}

void expect_results_equal(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    const NdtRecord& x = a.tests[i];
    const NdtRecord& y = b.tests[i];
    EXPECT_EQ(x.test_id, y.test_id);
    EXPECT_EQ(x.client, y.client);
    EXPECT_EQ(x.server, y.server);
    EXPECT_DOUBLE_EQ(x.utc_time_hours, y.utc_time_hours);
    EXPECT_DOUBLE_EQ(x.download_mbps, y.download_mbps);
    EXPECT_DOUBLE_EQ(x.upload_mbps, y.upload_mbps);
    EXPECT_DOUBLE_EQ(x.flow_rtt_ms, y.flow_rtt_ms);
    EXPECT_DOUBLE_EQ(x.retrans_rate, y.retrans_rate);
    EXPECT_EQ(x.congestion_signals, y.congestion_signals);
    EXPECT_EQ(x.status, y.status);
    EXPECT_EQ(x.truncated, y.truncated);
    EXPECT_EQ(x.has_webstats, y.has_webstats);
    EXPECT_EQ(x.truth_bottleneck, y.truth_bottleneck);
    EXPECT_EQ(x.truth_access_limited, y.truth_access_limited);
    expect_paths_equal(x.truth_path, y.truth_path);
  }
  ASSERT_EQ(a.traceroutes.size(), b.traceroutes.size());
  for (std::size_t i = 0; i < a.traceroutes.size(); ++i) {
    const TracerouteRecord& x = a.traceroutes[i];
    const TracerouteRecord& y = b.traceroutes[i];
    EXPECT_EQ(x.src_host, y.src_host);
    EXPECT_EQ(x.dst, y.dst);
    EXPECT_DOUBLE_EQ(x.utc_time_hours, y.utc_time_hours);
    EXPECT_EQ(x.reached_dst, y.reached_dst);
    ASSERT_EQ(x.hops.size(), y.hops.size());
    for (std::size_t h = 0; h < x.hops.size(); ++h) {
      EXPECT_EQ(x.hops[h].ttl, y.hops[h].ttl);
      EXPECT_EQ(x.hops[h].responded, y.hops[h].responded);
      EXPECT_EQ(x.hops[h].addr, y.hops[h].addr);
      EXPECT_DOUBLE_EQ(x.hops[h].rtt_ms, y.hops[h].rtt_ms);
      EXPECT_EQ(x.hops[h].dns_name, y.hops[h].dns_name);
    }
    expect_paths_equal(x.truth, y.truth);
  }
  EXPECT_EQ(a.traceroutes_skipped_busy, b.traceroutes_skipped_busy);
  EXPECT_EQ(a.traceroutes_skipped_cached, b.traceroutes_skipped_cached);
  EXPECT_EQ(a.traceroutes_failed, b.traceroutes_failed);
  EXPECT_EQ(a.quality, b.quality);
}

CampaignResult run_with(int threads, const route::PathCache* cache,
                        const std::vector<gen::TestRequest>& schedule) {
  Stack& s = stack();
  CampaignConfig cfg;
  cfg.threads = threads;
  NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab, cfg);
  if (cache) campaign.set_path_cache(cache);
  util::Rng rng(20150501);
  return campaign.run(schedule, rng);
}

TEST(CampaignParallel, IdenticalAcrossThreadCounts) {
  auto schedule = dense_schedule();
  CampaignResult serial = run_with(1, nullptr, schedule);
  // The engine exercised every daemon outcome at least once.
  EXPECT_GT(serial.traceroutes.size(), 0u);
  EXPECT_GT(serial.traceroutes_skipped_busy + serial.traceroutes_skipped_cached,
            0u);
  for (int threads : {2, 8}) {
    CampaignResult par = run_with(threads, nullptr, schedule);
    SCOPED_TRACE(threads);
    expect_results_equal(serial, par);
  }
}

TEST(CampaignParallel, IdenticalWithAndWithoutPathCache) {
  auto schedule = dense_schedule();
  Stack& s = stack();
  CampaignResult uncached = run_with(4, nullptr, schedule);
  route::PathCache cache(s.fwd);
  CampaignResult cached = run_with(4, &cache, schedule);
  expect_results_equal(uncached, cached);
  // The dense repeat schedule must actually exercise the cache.
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(CampaignParallel, RepeatRunsWithSameSeedAgree) {
  auto schedule = dense_schedule();
  CampaignResult a = run_with(0, nullptr, schedule);
  CampaignResult b = run_with(0, nullptr, schedule);
  expect_results_equal(a, b);
}

CampaignResult run_faulted(int threads, const route::PathCache* cache,
                           const std::vector<gen::TestRequest>& schedule,
                           const sim::FaultInjector& faults) {
  Stack& s = stack();
  CampaignConfig cfg;
  cfg.threads = threads;
  NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab, cfg);
  if (cache) campaign.set_path_cache(cache);
  campaign.set_faults(&faults);
  util::Rng rng(20150501);
  return campaign.run(schedule, rng);
}

// The PR-1 determinism contract extends to faulted campaigns: every fault
// decision is a pure function of (seed, site, item), so the whole degraded
// result — statuses, truncations, quality counters — is bit-identical
// across worker counts and with or without a path cache.
TEST(CampaignParallel, FaultedIdenticalAcrossThreadsAndCache) {
  auto schedule = dense_schedule();
  Stack& s = stack();
  sim::FaultInjector faults(sim::FaultConfig::scaled(0.3), 77);
  CampaignResult serial = run_faulted(1, nullptr, schedule, faults);

  // The faults actually fired and every record is accounted for.
  EXPECT_TRUE(serial.quality.consistent());
  EXPECT_EQ(serial.quality.tests_attempted, schedule.size());
  EXPECT_GT(serial.quality.tests_aborted + serial.quality.tests_unserved +
                serial.quality.tests_truncated +
                serial.quality.webstats_dropped,
            0u);
  EXPECT_LT(serial.quality.tests_completed, serial.quality.tests_attempted);
  EXPECT_GT(serial.quality.tests_completed, 0u);

  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    CampaignResult par = run_faulted(threads, nullptr, schedule, faults);
    expect_results_equal(serial, par);
  }
  route::PathCache cache(s.fwd);
  CampaignResult cached = run_faulted(4, &cache, schedule, faults);
  expect_results_equal(serial, cached);
}

// An enabled injector whose every rate is zero must reproduce the clean
// campaign exactly — enabling the layer does not perturb the draw streams.
TEST(CampaignParallel, ZeroRateInjectorMatchesCleanRun) {
  auto schedule = dense_schedule();
  sim::FaultConfig zero;
  zero.enabled = true;
  sim::FaultInjector faults(zero, 77);
  CampaignResult clean = run_with(4, nullptr, schedule);
  CampaignResult zeroed = run_faulted(4, nullptr, schedule, faults);
  expect_results_equal(clean, zeroed);
  EXPECT_EQ(zeroed.quality.tests_completed, schedule.size());
}

}  // namespace
}  // namespace netcong::measure
