#include "core/coverage.h"

#include <algorithm>

#include "util/flat_set.h"

namespace netcong::core {

namespace {
struct InterconnectKeyHash {
  std::uint64_t operator()(const InterconnectKey& k) const {
    return util::splitmix64(k.neighbor ^ util::splitmix64(k.far_router));
  }
};
}  // namespace

std::vector<InterconnectKey> interconnects_used(
    const std::vector<measure::TracerouteRecord>& corpus, topo::Asn vp_as,
    const infer::MapItResult& mapit, const infer::Ip2As& ip2as,
    const infer::OrgMap& orgs, const infer::AliasResolver& aliases) {
  std::uint32_t vp_org = orgs.org_of(vp_as);
  util::FlatSet<InterconnectKey, InterconnectKeyHash> seen;
  for (const auto& tr : corpus) {
    topo::Asn prev_op = 0;
    topo::IpAddr prev;
    bool have_prev = false;
    for (const auto& hop : tr.hops) {
      if (!hop.responded) {
        have_prev = false;
        continue;
      }
      topo::Asn op = mapit.op(hop.addr);
      if (op == 0) op = ip2as.origin(hop.addr);
      if (have_prev && prev_op != 0 && op != 0 &&
          orgs.org_of(prev_op) == vp_org && orgs.org_of(op) != vp_org) {
        seen.insert(InterconnectKey{op, aliases.group(hop.addr)});
        break;  // first exit from the VP network defines the interconnect
      }
      if (op != 0) {
        prev = hop.addr;
        prev_op = op;
        have_prev = true;
      }
    }
  }
  std::vector<InterconnectKey> out;
  out.reserve(seen.size());
  for (const InterconnectKey& k : seen) out.push_back(k);
  std::sort(out.begin(), out.end());  // the ordered-set contract callers saw
  return out;
}

VpCoverage analyze_coverage(
    const std::string& vp_label, const std::string& network,
    const infer::BdrmapResult& bdrmap,
    const std::vector<measure::TracerouteRecord>& to_mlab,
    const std::vector<measure::TracerouteRecord>& to_speedtest,
    const std::vector<measure::TracerouteRecord>& to_alexa,
    const infer::Ip2As& ip2as, const infer::OrgMap& orgs,
    const infer::AliasResolver& aliases) {
  VpCoverage cov;
  cov.vp_label = vp_label;
  cov.network = network;

  std::set<topo::Asn> peer_asns;
  for (const auto& b : bdrmap.borders) {
    cov.discovered.as_level.insert(b.neighbor);
    bool is_peer = b.rel == topo::RelType::kPeer;
    if (is_peer) {
      cov.discovered_peers.as_level.insert(b.neighbor);
      peer_asns.insert(b.neighbor);
    }
    for (std::uint64_t r : b.far_routers) {
      InterconnectKey k{b.neighbor, r};
      cov.discovered.router_level.insert(k);
      if (is_peer) cov.discovered_peers.router_level.insert(k);
    }
  }

  auto fill = [&](const std::vector<measure::TracerouteRecord>& corpus,
                  CoverageSet& all, CoverageSet* peers) {
    for (const InterconnectKey& k :
         interconnects_used(corpus, bdrmap.vp_as, bdrmap.mapit, ip2as, orgs,
                            aliases)) {
      all.add(k);
      if (peers && peer_asns.count(k.neighbor)) peers->add(k);
    }
  };
  fill(to_mlab, cov.mlab, &cov.mlab_peers);
  fill(to_speedtest, cov.speedtest, &cov.speedtest_peers);
  fill(to_alexa, cov.alexa, nullptr);
  return cov;
}

OverlapStats overlap(const CoverageSet& platform, const CoverageSet& alexa) {
  OverlapStats s;
  s.alexa_total_as = alexa.as_level.size();
  for (topo::Asn a : platform.as_level) {
    if (!alexa.as_level.count(a)) ++s.platform_not_alexa_as;
  }
  for (topo::Asn a : alexa.as_level) {
    if (!platform.as_level.count(a)) ++s.alexa_not_platform_as;
  }
  for (const auto& k : platform.router_level) {
    if (!alexa.router_level.count(k)) ++s.platform_not_alexa_router;
  }
  for (const auto& k : alexa.router_level) {
    if (!platform.router_level.count(k)) ++s.alexa_not_platform_router;
  }
  return s;
}

}  // namespace netcong::core
