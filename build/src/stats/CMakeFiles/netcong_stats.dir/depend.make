# Empty dependencies file for netcong_stats.
# This may be replaced when dependencies are built.
