#pragma once

// A small reusable thread pool and a blocking parallel_for on top of it.
//
// Rules that keep netcong deterministic under parallelism:
//  * parallel_for(n, threads, fn) promises only that fn(i) runs exactly once
//    for every i in [0, n); callers must make fn(i) depend on i alone (e.g.
//    seed per-item randomness with Rng::fork on the item id) so results are
//    independent of the worker count and of scheduling order.
//  * Shared mutable state written from fn must either be pre-sized and
//    indexed by i (each slot written by exactly one call) or be a pure
//    function of its key (see route::PathCache).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace netcong::util {

// Worker count used when a caller passes threads == 0: the NETCONG_THREADS
// environment variable when set (clamped to >= 1), else the hardware
// concurrency (>= 1).
int default_thread_count();

// Fixed set of workers draining a FIFO task queue. The process-wide shared()
// pool grows on demand and is reused by every parallel_for, so campaigns do
// not pay thread start-up per call.
class ThreadPool {
 public:
  // threads == 0 uses default_thread_count().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const;

  // Enqueues a task; runs as soon as a worker frees up.
  void submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void wait();

  // Grows the pool to at least `threads` workers.
  void ensure_workers(int threads);

  // Process-wide pool shared by parallel_for.
  static ThreadPool& shared();

  // True when the calling thread is one of a ThreadPool's workers (used to
  // run nested parallel_for calls inline instead of deadlocking the pool).
  static bool on_worker_thread();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;  // queued + running
  bool stop_ = false;
};

// Thrown by parallel_for when more than one iteration failed: what() is a
// summary, messages() the per-failure details (each failing chunk or
// iteration contributes one entry). A single failure is rethrown as-is.
class ParallelError : public std::runtime_error {
 public:
  explicit ParallelError(std::vector<std::string> messages);
  const std::vector<std::string>& messages() const { return messages_; }

 private:
  std::vector<std::string> messages_;
};

// Runs fn(i) for every i in [0, n), distributed over up to `threads` workers
// (0 = default_thread_count()). Blocks until all iterations finish; the
// calling thread participates. A throwing iteration never cancels the rest:
// every remaining chunk still runs, and after the loop the sole captured
// exception is rethrown, or several are aggregated into a ParallelError —
// no worker's failure is lost. With threads == 1 (or n < 2, or when already
// on a pool worker) the loop runs inline with the same semantics.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace netcong::util
