#pragma once

// Columnar (structure-of-arrays) campaign output for internet-scale runs.
//
// The classic CampaignResult is an array of structs: every NdtRecord owns a
// full copy of its RouterPath (three vectors), every TracerouteRecord owns a
// vector of TraceHop each carrying a heap std::string for the PTR name. At
// 10M tests that is tens of millions of small allocations and several
// redundant copies of every popular path. The columnar layout removes all
// of it:
//
//  * NdtCorpus / TraceCorpus hold one flat vector per field;
//  * truth paths are interned once in a PathPool and referenced by index —
//    repeat (server, client, bucket) tests share a single RouterPath;
//  * traceroute hops are PackedTraceHop values bump-allocated into
//    per-campaign util::Arena slabs; a trace holds a (pointer, count) span
//    into a slab instead of a heap vector;
//  * PTR strings are not stored at all: a hop keeps the replying
//    topo::InterfaceId and the name is derived from the topology on demand
//    (an invalid id means "no PTR" — stars, management addresses, and
//    destination hosts, exactly the cases the classic record left empty).
//
// Equivalence contract: NdtCampaign::run_columnar produces, field for
// field, the same values as NdtCampaign::run — materialize() reconstructs
// the classic records bit-identically and measure::fingerprint of the two
// results is equal. Consumers that want bounded memory stream the corpus
// with for_each_batch instead of materializing it whole.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "measure/ndt.h"
#include "measure/traceroute.h"
#include "route/path_cache.h"
#include "util/arena.h"
#include "util/flat_map.h"

namespace netcong::measure {

// Index of an interned path in a PathPool; kNoPath marks records that never
// acquired a path (unserved/aborted/failed stubs) and materializes as a
// default RouterPath, matching the classic records' untouched truth fields.
using PathRef = std::uint32_t;
inline constexpr PathRef kNoPath = 0xffffffffu;

// Deduplicated store of truth paths, keyed by the same identity the
// PathCache uses (src_host, dst, ECMP-relevant flow fields) — NOT by
// pointer, so interning is independent of cache eviction and recomputation
// timing. Interning is serial (the campaign interns in slot order after the
// parallel phases); lookups are const and safe to share across threads.
class PathPool {
 public:
  // Returns the ref for `key`, interning `path` if the key is new. The
  // pool's contents are a pure function of the (key, path) sequence.
  PathRef intern(const route::PathCache::Key& key,
                 std::shared_ptr<const route::RouterPath> path);

  // kNoPath yields a static default-constructed RouterPath.
  const route::RouterPath& at(PathRef ref) const;

  std::size_t size() const { return paths_.size(); }

 private:
  util::FlatMap<route::PathCache::Key, PathRef, route::PathCache::KeyHash>
      index_;
  std::vector<std::shared_ptr<const route::RouterPath>> paths_;
};

// One traceroute hop in 24 bytes (vs ~64 + a string allocation for the
// classic TraceHop). Trivially copyable by design: hops live in Arena slabs.
struct PackedTraceHop {
  double rtt_ms = 0.0;
  topo::IpAddr addr;         // valid only if responded
  topo::InterfaceId iface;   // replying interface; invalid = no PTR record
  std::int32_t ttl = 0;
  std::uint8_t responded = 0;
};

// Column-per-field mirror of std::vector<NdtRecord>. Bools are stored as
// uint8_t (std::vector<bool> is not a thread-safe write target), the truth
// path as a PathRef into the campaign's PathPool.
struct NdtCorpus {
  std::vector<std::uint64_t> test_id;
  std::vector<std::uint32_t> client;
  std::vector<std::uint32_t> server;
  std::vector<double> utc_time_hours;
  std::vector<double> download_mbps;
  std::vector<double> upload_mbps;
  std::vector<double> flow_rtt_ms;
  std::vector<double> retrans_rate;
  std::vector<std::int32_t> congestion_signals;
  std::vector<topo::Asn> client_asn;
  std::vector<topo::Asn> server_asn;
  std::vector<NdtStatus> status;
  std::vector<std::uint8_t> truncated;
  std::vector<std::uint8_t> has_webstats;
  std::vector<PathRef> truth_path;
  std::vector<topo::LinkId> truth_bottleneck;
  std::vector<std::uint8_t> truth_access_limited;

  std::size_t size() const { return test_id.size(); }
  void resize(std::size_t n);

  // The scalar fields of record i as a classic NdtRecord; truth_path is left
  // default-constructed (analyses never read it — it is validation-only).
  NdtRecord materialize_scalar(std::size_t i) const;
  // Full reconstruction including the truth path copy.
  NdtRecord materialize(std::size_t i, const PathPool& pool) const;
};

// Column-per-field mirror of std::vector<TracerouteRecord>. Hop spans point
// into the arenas owned by this corpus; moving the corpus moves ownership,
// copying is deleted (spans would dangle).
struct TraceCorpus {
  std::vector<std::uint32_t> src_host;
  std::vector<topo::IpAddr> dst;
  std::vector<double> utc_time_hours;
  std::vector<std::uint8_t> reached_dst;
  std::vector<PathRef> truth;
  std::vector<const PackedTraceHop*> hops;  // nullptr iff hop_count == 0
  std::vector<std::uint32_t> hop_count;
  // Slabs backing the hop spans, one arena per builder block.
  std::vector<util::Arena> arenas;

  TraceCorpus() = default;
  TraceCorpus(TraceCorpus&&) = default;
  TraceCorpus& operator=(TraceCorpus&&) = default;
  TraceCorpus(const TraceCorpus&) = delete;
  TraceCorpus& operator=(const TraceCorpus&) = delete;

  std::size_t size() const { return src_host.size(); }
  std::size_t total_hops() const;

  // PTR names are derived from `topo` (hop.iface), truth from `pool`.
  TracerouteRecord materialize(std::size_t i, const topo::Topology& topo,
                               const PathPool& pool) const;
};

// Columnar counterpart of CampaignResult: identical accounting, shared
// PathPool for test and traceroute truth paths, plus the topology pointer
// PTR derivation needs.
struct ColumnarCampaignResult {
  NdtCorpus tests;
  TraceCorpus traceroutes;
  std::size_t traceroutes_skipped_busy = 0;
  std::size_t traceroutes_skipped_cached = 0;
  std::size_t traceroutes_failed = 0;
  sim::DataQuality quality;
  PathPool paths;
  const topo::Topology* topo = nullptr;

  // Reconstructs the classic AoS result (every record bit-identical to what
  // NdtCampaign::run would have produced). Costs the full AoS footprint —
  // meant for parity tests and small runs, not the 10M-test path.
  CampaignResult materialize() const;
};

// Invokes fn(begin, end) over consecutive half-open index ranges covering
// [0, n), each at most batch_size wide (the last may be shorter). A zero
// batch_size means one batch spanning everything; n == 0 invokes nothing.
template <typename Fn>
void for_each_batch(std::size_t n, std::size_t batch_size, Fn&& fn) {
  if (batch_size == 0) batch_size = n;
  for (std::size_t begin = 0; begin < n; begin += batch_size) {
    fn(begin, begin + batch_size < n ? begin + batch_size : n);
  }
}

}  // namespace netcong::measure
