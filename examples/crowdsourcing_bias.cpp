// Crowdsourcing bias demonstration (paper Section 6.1): the same network,
// measured two ways — by self-selected users who test when they feel like
// it, and by a scheduled platform that tests around the clock — and what
// the sampling biases do to the diurnal picture.
//
//   ./build/examples/crowdsourcing_bias

#include <cmath>
#include <cstdio>

#include "core/diurnal.h"
#include "gen/workload.h"
#include "gen/world.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "sim/throughput.h"
#include "stats/bootstrap.h"
#include "stats/timeseries.h"

int main() {
  using namespace netcong;

  gen::GeneratorConfig cfg = gen::GeneratorConfig::small();
  cfg.seed = 31;
  gen::World world = gen::generate_world(cfg);
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);
  sim::ThroughputModel model(*world.topo, *world.traffic);
  // Restrict the platform to the GTT-hosted servers: the GTT<->Comcast
  // interconnections run busy (but uncongested) in the default scenario, so
  // this is exactly the Figure 5 Comcast case the paper puzzles over.
  std::vector<std::uint32_t> gtt_servers;
  topo::Asn gtt = world.transit_asns.at("GTT");
  for (std::uint32_t s : world.mlab_servers) {
    if (world.topo->host(s).asn == gtt) gtt_servers.push_back(s);
  }
  measure::Platform mlab("M-Lab/GTT", *world.topo, gtt_servers);
  measure::NdtCampaign campaign(world, fwd, model, mlab,
                                measure::CampaignConfig{});

  auto comcast = world.clients_of("Comcast");
  util::Rng rng(9);

  auto run = [&](bool biased) {
    gen::WorkloadConfig wl;
    wl.days = 14;
    wl.mean_tests_per_client = 12.0;
    wl.diurnal_bias = biased;
    if (!biased) wl.repeat_session_prob = 0.0;
    auto schedule = gen::crowdsourced_schedule(world, comcast, wl, rng);
    return campaign.run(schedule, rng);
  };

  auto crowd = run(true);
  auto scheduled = run(false);

  auto series_for = [&](const measure::CampaignResult& r) {
    stats::HourlySeries s;
    for (const auto& t : r.tests) {
      if (t.download_mbps <= 0) continue;
      int offset =
          world.topo->city(world.topo->host(t.client).city).utc_offset_hours;
      s.add(sim::local_hour(std::fmod(t.utc_time_hours, 24.0), offset),
            t.download_mbps);
    }
    return s;
  };
  stats::HourlySeries crowd_series = series_for(crowd);
  stats::HourlySeries sched_series = series_for(scheduled);

  std::printf("Comcast clients, %zu crowdsourced vs %zu scheduled tests\n\n",
              crowd.tests.size(), scheduled.tests.size());
  std::printf("%10s  %22s  %22s\n", "local hour", "crowdsourced (n, med)",
              "scheduled (n, med)");
  for (int h = 0; h < 24; h += 2) {
    auto cb = crowd_series.bin(h);
    auto sb = sched_series.bin(h);
    std::printf("%10d  %10zu %10.1f  %10zu %10.1f\n", h, cb.size(),
                stats::median(cb), sb.size(), stats::median(sb));
  }

  auto c_cmp = stats::compare_peak_offpeak(crowd_series);
  auto s_cmp = stats::compare_peak_offpeak(sched_series);
  std::printf("\npeak/off-peak sample ratio: crowdsourced %.1fx, "
              "scheduled %.1fx\n",
              static_cast<double>(c_cmp.peak_count) /
                  std::max<std::size_t>(1, c_cmp.offpeak_count),
              static_cast<double>(s_cmp.peak_count) /
                  std::max<std::size_t>(1, s_cmp.offpeak_count));

  // Bootstrap the off-peak median: sparse crowdsourced off-peak samples
  // produce a wide interval — the "fewer than 20 samples" problem.
  std::vector<double> crowd_off, sched_off;
  for (int h = 2; h <= 5; ++h) {
    auto cb = crowd_series.bin(h);
    crowd_off.insert(crowd_off.end(), cb.begin(), cb.end());
    auto sb = sched_series.bin(h);
    sched_off.insert(sched_off.end(), sb.begin(), sb.end());
  }
  auto ci_crowd = stats::bootstrap_median_ci(crowd_off, rng);
  auto ci_sched = stats::bootstrap_median_ci(sched_off, rng);
  std::printf("off-peak median 95%% CI: crowdsourced [%.1f, %.1f] over %zu "
              "samples; scheduled [%.1f, %.1f] over %zu samples\n",
              ci_crowd.lo, ci_crowd.hi, crowd_off.size(), ci_sched.lo,
              ci_sched.hi, sched_off.size());

  // Service-plan mixture: the median conflates tiers differing by an order
  // of magnitude (paper: plans within a region vary by 10x).
  stats::HourlySeries lo_tier, hi_tier;
  for (const auto& t : crowd.tests) {
    const topo::Host& c = world.topo->host(t.client);
    int offset = world.topo->city(c.city).utc_offset_hours;
    double local = sim::local_hour(std::fmod(t.utc_time_hours, 24.0), offset);
    (c.tier.down_mbps <= 50 ? lo_tier : hi_tier).add(local, t.download_mbps);
  }
  auto lo_cmp = stats::compare_peak_offpeak(lo_tier);
  auto hi_cmp = stats::compare_peak_offpeak(hi_tier);
  std::printf("\nstratified by service tier: <=50 Mbps plans drop %.0f%%, "
              ">50 Mbps plans drop %.0f%% (aggregate: %.0f%%)\n",
              100 * lo_cmp.relative_drop, 100 * hi_cmp.relative_drop,
              100 * c_cmp.relative_drop);
  std::printf("\nTakeaway: identical network, different sampling -> "
              "different-looking diurnal curves; stratify before drawing "
              "congestion conclusions.\n");
  return 0;
}
