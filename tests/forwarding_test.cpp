#include <gtest/gtest.h>

#include <set>

#include "helpers.h"
#include "route/bgp.h"
#include "route/forwarding.h"

namespace netcong::route {
namespace {

using test::HandTopo;
using topo::AsType;
using topo::HostKind;
using topo::RelType;

class ForwardingFixture : public ::testing::Test {
 protected:
  ForwardingFixture() {
    h.add_as(100, "T", AsType::kTransit, {0, 1, 2});
    h.add_as(200, "A", AsType::kAccess, {0, 2});
    h.connect(200, 100, RelType::kCustomer, {0, 2});
    server = h.add_host(100, 1, HostKind::kTestServer);  // Chicago
    client = h.add_host(200, 0, HostKind::kClient);      // NYC
  }
  FlowKey key_for(std::uint32_t src, std::uint32_t dst, std::uint16_t port) {
    return FlowKey{h.topo().host(src).addr, h.topo().host(dst).addr, 3001,
                   port, 6};
  }
  HandTopo h;
  std::uint32_t server = 0, client = 0;
};

TEST_F(ForwardingFixture, PathStructureConsistent) {
  BgpRouting bgp(h.topo());
  Forwarder fwd(h.topo(), bgp);
  auto p = fwd.path(server, h.topo().host(client).addr,
                    key_for(server, client, 40000));
  ASSERT_TRUE(p.valid);
  EXPECT_EQ(p.as_path.front(), 100u);
  EXPECT_EQ(p.as_path.back(), 200u);
  EXPECT_EQ(p.hops.size(), p.links.size() + 1);
  // hops[i+1].in_link must equal links[i]; consecutive hops share the link.
  for (std::size_t i = 0; i + 1 < p.hops.size(); ++i) {
    EXPECT_EQ(p.hops[i + 1].in_link, p.links[i]);
    const topo::Link& l = h.topo().link(p.links[i]);
    topo::RouterId ra = h.topo().iface(l.side_a).router;
    topo::RouterId rb = h.topo().iface(l.side_b).router;
    EXPECT_TRUE((ra == p.hops[i].router && rb == p.hops[i + 1].router) ||
                (rb == p.hops[i].router && ra == p.hops[i + 1].router));
  }
  // First hop is the server's attachment router.
  EXPECT_EQ(p.hops.front().router, h.topo().host(server).attachment);
  EXPECT_EQ(p.hops.back().router, h.topo().host(client).attachment);
  // Exactly one interdomain link on a one-AS-hop path.
  int interdomain = 0;
  for (auto l : p.links) {
    if (h.topo().link(l).kind == topo::LinkKind::kInterdomain) ++interdomain;
  }
  EXPECT_EQ(interdomain, 1);
  EXPECT_GT(p.one_way_delay_ms, 0.0);
}

TEST_F(ForwardingFixture, SameKeySamePath) {
  BgpRouting bgp(h.topo());
  Forwarder fwd(h.topo(), bgp);
  auto k = key_for(server, client, 50123);
  auto p1 = fwd.path(server, h.topo().host(client).addr, k);
  auto p2 = fwd.path(server, h.topo().host(client).addr, k);
  ASSERT_TRUE(p1.valid && p2.valid);
  EXPECT_EQ(p1.links, p2.links);
}

TEST_F(ForwardingFixture, HotPotatoPrefersNearExit) {
  // Server in Chicago, client in NYC: the NYC interconnection (city 0)
  // should be chosen over LA (city 2).
  BgpRouting bgp(h.topo());
  Forwarder fwd(h.topo(), bgp);
  auto p = fwd.path(server, h.topo().host(client).addr,
                    key_for(server, client, 40000));
  ASSERT_TRUE(p.valid);
  bool crossed_in_nyc = false;
  for (auto l : p.links) {
    const topo::Link& link = h.topo().link(l);
    if (link.kind != topo::LinkKind::kInterdomain) continue;
    topo::CityId c =
        h.topo().router(h.topo().iface(link.side_a).router).city;
    crossed_in_nyc = (c == h.city(0));
  }
  EXPECT_TRUE(crossed_in_nyc);
}

TEST_F(ForwardingFixture, UnknownDestinationInvalid) {
  BgpRouting bgp(h.topo());
  Forwarder fwd(h.topo(), bgp);
  auto p = fwd.path(server, topo::IpAddr(250, 0, 0, 1),
                    key_for(server, client, 1));
  EXPECT_FALSE(p.valid);
}

TEST_F(ForwardingFixture, PrefixDestinationTerminatesInOwnerAs) {
  BgpRouting bgp(h.topo());
  Forwarder fwd(h.topo(), bgp);
  // An address inside AS200's block that is neither host nor interface.
  topo::IpAddr inside(17, 0, 200, 77);
  ASSERT_EQ(h.topo().true_owner(inside).value(), 200u);
  auto p = fwd.path(server, inside, key_for(server, client, 9));
  ASSERT_TRUE(p.valid);
  EXPECT_EQ(h.topo().router(p.hops.back().router).owner, 200u);
}

TEST(Forwarding, EcmpSpreadsFlowsAcrossParallelLinks) {
  HandTopo h;
  h.add_as(100, "T", AsType::kTransit, {0});
  h.add_as(200, "A", AsType::kAccess, {0});
  // Three parallel interdomain links in the same city.
  h.connect(200, 100, RelType::kCustomer, {0, 0, 0});
  auto server = h.add_host(100, 0, HostKind::kTestServer);
  auto client = h.add_host(200, 0, HostKind::kClient);
  BgpRouting bgp(h.topo());
  Forwarder fwd(h.topo(), bgp);
  std::set<std::uint32_t> used;
  for (std::uint16_t port = 1000; port < 1200; ++port) {
    FlowKey k{h.topo().host(server).addr, h.topo().host(client).addr, 3001,
              port, 6};
    auto p = fwd.path(server, h.topo().host(client).addr, k);
    ASSERT_TRUE(p.valid);
    for (auto l : p.links) {
      if (h.topo().link(l).kind == topo::LinkKind::kInterdomain) {
        used.insert(l.value);
      }
    }
  }
  EXPECT_GE(used.size(), 2u);  // multiple parallel links see traffic
}

TEST(Forwarding, GeneratedWorldPathsValid) {
  const gen::World& world = test::tiny_world();
  BgpRouting bgp(*world.topo);
  Forwarder fwd(*world.topo, bgp);
  int valid = 0, total = 0;
  for (std::uint32_t s : world.mlab_servers) {
    for (std::size_t i = 0; i < world.clients.size(); i += 13) {
      std::uint32_t c = world.clients[i];
      FlowKey k{world.topo->host(s).addr, world.topo->host(c).addr, 3001,
                static_cast<std::uint16_t>(40000 + i), 6};
      auto p = fwd.path(s, world.topo->host(c).addr, k);
      ++total;
      if (p.valid) ++valid;
    }
  }
  EXPECT_EQ(valid, total);
}

}  // namespace
}  // namespace netcong::route
