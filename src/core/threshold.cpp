#include "core/threshold.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace netcong::core {

std::vector<RocPoint> roc_sweep(const std::vector<LabeledDrop>& drops,
                                int steps) {
  std::size_t positives = 0;
  std::size_t negatives = 0;
  for (const auto& d : drops) {
    (d.truth_congested ? positives : negatives)++;
  }
  std::vector<RocPoint> roc;
  for (int i = 0; i <= steps; ++i) {
    RocPoint p;
    p.threshold = static_cast<double>(i) / steps;
    std::size_t tp = 0, fp = 0;
    for (const auto& d : drops) {
      bool predicted = d.relative_drop >= p.threshold;
      if (!predicted) continue;
      ++p.predicted_positive;
      (d.truth_congested ? tp : fp)++;
    }
    p.tpr = positives == 0 ? 0.0 : static_cast<double>(tp) / positives;
    p.fpr = negatives == 0 ? 0.0 : static_cast<double>(fp) / negatives;
    roc.push_back(p);
  }
  return roc;
}

RocPoint best_threshold(const std::vector<RocPoint>& roc) {
  RocPoint best;
  double best_j = -1.0;
  for (const auto& p : roc) {
    double j = p.tpr - p.fpr;
    if (j > best_j || (j == best_j && p.threshold > best.threshold)) {
      best_j = j;
      best = p;
    }
  }
  return best;
}

DropDistributions drop_distributions(const std::vector<LabeledDrop>& drops) {
  DropDistributions d;
  for (const auto& x : drops) {
    (x.truth_congested ? d.congested : d.uncongested)
        .push_back(x.relative_drop);
  }
  d.congested_median = stats::median(d.congested);
  d.uncongested_median = stats::median(d.uncongested);
  if (!d.congested.empty() && !d.uncongested.empty()) {
    d.separation = *std::min_element(d.congested.begin(), d.congested.end()) -
                   *std::max_element(d.uncongested.begin(),
                                     d.uncongested.end());
  }
  return d;
}

}  // namespace netcong::core
