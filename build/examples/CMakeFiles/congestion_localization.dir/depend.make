# Empty dependencies file for congestion_localization.
# This may be replaced when dependencies are built.
