#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <set>
#include <unordered_set>

#include "gen/address_alloc.h"
#include "gen/cities.h"
#include "gen/paper_data.h"
#include "gen/profiles.h"
#include "gen/workload.h"
#include "gen/world.h"
#include "helpers.h"
#include "sim/diurnal.h"

namespace netcong::gen {
namespace {

TEST(AddressAllocator, BlocksAreAlignedAndDisjoint) {
  AddressAllocator a;
  std::vector<topo::Prefix> blocks;
  for (int i = 0; i < 50; ++i) {
    blocks.push_back(a.alloc_block(static_cast<std::uint8_t>(12 + i % 10)));
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].network.value % blocks[i].size(), 0u) << "alignment";
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      EXPECT_FALSE(blocks[i].contains(blocks[j]));
      EXPECT_FALSE(blocks[j].contains(blocks[i]));
    }
  }
}

TEST(P2pCarver, Slash30Convention) {
  P2pCarver c(topo::Prefix(topo::IpAddr(10, 0, 0, 0), 24));
  P2pCarver::Subnet s;
  ASSERT_TRUE(c.next(false, s));
  EXPECT_EQ(s.a.to_string(), "10.0.0.1");
  EXPECT_EQ(s.b.to_string(), "10.0.0.2");
  ASSERT_TRUE(c.next(false, s));
  EXPECT_EQ(s.a.to_string(), "10.0.0.5");
}

TEST(P2pCarver, Slash31AndExhaustion) {
  P2pCarver c(topo::Prefix(topo::IpAddr(10, 0, 0, 0), 30));
  P2pCarver::Subnet s;
  ASSERT_TRUE(c.next(true, s));
  EXPECT_EQ(s.a.value + 1, s.b.value);
  ASSERT_TRUE(c.next(true, s));
  EXPECT_FALSE(c.next(true, s));  // /30 pool exhausted after two /31s
}

TEST(Cities, MetrosHaveDistinctCodes) {
  std::set<std::string> codes;
  for (const auto& m : us_metros()) codes.insert(m.code);
  EXPECT_EQ(codes.size(), us_metros().size());
}

TEST(Cities, SiteMappingCoversTable3) {
  for (const auto& row : paper::table3_bdrmap()) {
    std::size_t idx = metro_index_for_site(std::string(row.vp));
    EXPECT_LT(idx, us_metros().size());
  }
}

TEST(Profiles, AccessProfilesMatchTable1Scale) {
  const auto& profiles = default_access_profiles();
  // All Table 1 providers with >1M subscribers must be present.
  for (const auto& row : paper::table1_providers()) {
    bool found = false;
    for (const auto& p : profiles) {
      if (row.name == "Time Warner Cable" ? p.name == "TWC"
                                          : p.name == row.name) {
        found = true;
        EXPECT_EQ(p.subscribers, row.subscribers);
      }
    }
    EXPECT_TRUE(found) << row.name;
  }
}

TEST(Profiles, TierMixesSumToOne) {
  for (auto tech :
       {AccessTech::kCable, AccessTech::kDsl, AccessTech::kFiber}) {
    double sum = 0;
    for (const auto& t : tier_mix(tech)) sum += t.weight;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

class WorldFixture : public ::testing::Test {
 protected:
  const World& world() { return test::small_world(); }
};

TEST_F(WorldFixture, InterfaceAddressesUnique) {
  std::unordered_set<std::uint32_t> seen;
  for (const auto& i : world().topo->interfaces()) {
    EXPECT_TRUE(seen.insert(i.addr.value).second)
        << "duplicate interface address " << i.addr.to_string();
  }
}

TEST_F(WorldFixture, HostAddressesUniqueAndOwned) {
  std::unordered_set<std::uint32_t> seen;
  for (const auto& h : world().topo->hosts()) {
    EXPECT_TRUE(seen.insert(h.addr.value).second);
    auto owner = world().topo->true_owner(h.addr);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(*owner, h.asn);
  }
}

TEST_F(WorldFixture, EveryRelationshipHasPhysicalLinks) {
  const auto& topo = *world().topo;
  std::size_t missing = 0, total = 0;
  for (topo::Asn a : topo.all_asns()) {
    for (const auto& [b, rel] : topo.relationships().neighbors(a)) {
      if (a >= b) continue;
      ++total;
      if (topo.interdomain_links(a, b).empty()) ++missing;
    }
  }
  // Sibling "customer" edges within an org may lack dedicated links, but
  // the overwhelming majority of relationships must be physical.
  EXPECT_LT(static_cast<double>(missing) / static_cast<double>(total), 0.02);
}

TEST_F(WorldFixture, InterdomainLinksMatchDeclaredRelationships) {
  const auto& topo = *world().topo;
  for (const auto& l : topo.links()) {
    if (l.kind != topo::LinkKind::kInterdomain) continue;
    EXPECT_NE(topo.relationships().between(l.as_a, l.as_b),
              topo::RelType::kNone);
  }
}

TEST_F(WorldFixture, BackboneExistsPerAsCity) {
  const auto& topo = *world().topo;
  for (topo::Asn asn : topo.all_asns()) {
    for (topo::CityId c : topo.as_info(asn).cities) {
      bool has_backbone = false;
      for (topo::RouterId r : topo.routers_of(asn, c)) {
        if (topo.router(r).role == topo::RouterRole::kBackbone) {
          has_backbone = true;
        }
      }
      EXPECT_TRUE(has_backbone)
          << topo.as_info(asn).name << " in " << topo.city(c).name;
    }
  }
}

TEST_F(WorldFixture, ServerFleetsMatchConfig) {
  gen::GeneratorConfig cfg = gen::GeneratorConfig::small();
  EXPECT_EQ(world().mlab_servers.size(),
            static_cast<std::size_t>(cfg.mlab_servers));
  EXPECT_EQ(world().speedtest_servers_2017.size(),
            static_cast<std::size_t>(cfg.speedtest_servers_2017));
  EXPECT_EQ(world().speedtest_servers_2015.size(),
            static_cast<std::size_t>(cfg.speedtest_servers_2015));
  // 2015 fleet is a prefix of 2017 (servers only ever added).
  for (std::size_t i = 0; i < world().speedtest_servers_2015.size(); ++i) {
    EXPECT_EQ(world().speedtest_servers_2015[i],
              world().speedtest_servers_2017[i]);
  }
}

TEST_F(WorldFixture, ArkVpsMatchProfiles) {
  std::size_t expected = 0;
  for (const auto& p : default_access_profiles()) expected += p.vp_sites.size();
  EXPECT_EQ(world().ark_vps.size(), expected);
  // VP labels are site codes, hosts live in the right ISP.
  for (std::uint32_t vp : world().ark_vps) {
    const topo::Host& h = world().topo->host(vp);
    EXPECT_EQ(h.kind, topo::HostKind::kVantage);
    EXPECT_FALSE(h.label.empty());
  }
}

TEST_F(WorldFixture, CongestedLinksMatchScenario) {
  ASSERT_FALSE(world().congested_links.empty());
  for (topo::LinkId l : world().congested_links) {
    EXPECT_TRUE(world().traffic->congested_at_peak(l));
  }
  // The default scenario congests GTT<->AT&T links.
  topo::Asn gtt = world().transit_asns.at("GTT");
  topo::Asn att = world().primary_asn("AT&T");
  auto links = world().topo->interdomain_links(gtt, att);
  ASSERT_FALSE(links.empty());
  for (topo::LinkId l : links) {
    EXPECT_TRUE(world().traffic->congested_at_peak(l));
  }
  // ...but not GTT<->Comcast.
  topo::Asn comcast = world().primary_asn("Comcast");
  for (topo::LinkId l : world().topo->interdomain_links(gtt, comcast)) {
    EXPECT_FALSE(world().traffic->congested_at_peak(l));
  }
}

TEST_F(WorldFixture, ClientsHaveTiersAndQuality) {
  ASSERT_FALSE(world().clients.empty());
  for (std::uint32_t c : world().clients) {
    const topo::Host& h = world().topo->host(c);
    EXPECT_EQ(h.kind, topo::HostKind::kClient);
    EXPECT_GT(h.tier.down_mbps, 0.0);
    EXPECT_GT(h.home_quality, 0.0);
    EXPECT_LE(h.home_quality, 1.0);
  }
  // Service plans within one ISP vary by an order of magnitude (paper 6.1).
  auto comcast = world().clients_of("Comcast");
  ASSERT_GT(comcast.size(), 10u);
  double lo = 1e9, hi = 0;
  for (auto c : comcast) {
    lo = std::min(lo, world().topo->host(c).tier.down_mbps);
    hi = std::max(hi, world().topo->host(c).tier.down_mbps);
  }
  EXPECT_GE(hi / lo, 5.0);
}

TEST_F(WorldFixture, DeterministicPerSeed) {
  gen::GeneratorConfig cfg = gen::GeneratorConfig::tiny();
  cfg.seed = 99;
  World a = generate_world(cfg);
  World b = generate_world(cfg);
  EXPECT_EQ(a.topo->links().size(), b.topo->links().size());
  EXPECT_EQ(a.topo->hosts().size(), b.topo->hosts().size());
  ASSERT_FALSE(a.clients.empty());
  EXPECT_EQ(a.topo->host(a.clients[0]).addr, b.topo->host(b.clients[0]).addr);
  EXPECT_EQ(a.congested_links.size(), b.congested_links.size());
}

TEST_F(WorldFixture, CustomerScaleGrowsBorders) {
  gen::GeneratorConfig small_cfg = gen::GeneratorConfig::tiny();
  small_cfg.seed = 5;
  gen::GeneratorConfig big_cfg = small_cfg;
  big_cfg.customer_scale = small_cfg.customer_scale * 4.0;
  World small = generate_world(small_cfg);
  World big = generate_world(big_cfg);
  EXPECT_GT(big.topo->as_count(), small.topo->as_count());
  EXPECT_GT(big.topo->interdomain_link_count(),
            small.topo->interdomain_link_count());
}

TEST(Workload, DiurnalBiasSkewsTowardEvening) {
  const World& world = test::tiny_world();
  util::Rng rng(3);
  WorkloadConfig cfg;
  cfg.days = 14;
  cfg.mean_tests_per_client = 8.0;
  auto schedule = crowdsourced_schedule(world, world.clients, cfg, rng);
  ASSERT_GT(schedule.size(), 200u);
  // Sortedness.
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(schedule[i - 1].utc_time_hours, schedule[i].utc_time_hours);
  }
  // Count tests by client-local hour: evening must dominate the small hours.
  std::size_t evening = 0, night = 0;
  for (const auto& req : schedule) {
    int offset =
        world.topo->city(world.topo->host(req.client).city).utc_offset_hours;
    double local =
        sim::local_hour(std::fmod(req.utc_time_hours, 24.0), offset);
    if (local >= 19 && local <= 23) ++evening;
    if (local >= 2 && local <= 6) ++night;
  }
  EXPECT_GT(evening, 3 * night);
}

TEST(Workload, UnbiasedModeIsUniform) {
  const World& world = test::tiny_world();
  util::Rng rng(4);
  WorkloadConfig cfg;
  cfg.days = 30;
  cfg.mean_tests_per_client = 10.0;
  cfg.diurnal_bias = false;
  auto schedule = crowdsourced_schedule(world, world.clients, cfg, rng);
  std::array<int, 24> hist{};
  for (const auto& req : schedule) {
    hist[static_cast<std::size_t>(std::fmod(req.utc_time_hours, 24.0))]++;
  }
  double mean = static_cast<double>(schedule.size()) / 24.0;
  for (int h = 0; h < 24; ++h) {
    EXPECT_GT(hist[static_cast<std::size_t>(h)], 0.5 * mean);
    EXPECT_LT(hist[static_cast<std::size_t>(h)], 1.6 * mean);
  }
}

TEST(Workload, HeavyTailActivity) {
  const World& world = test::tiny_world();
  util::Rng rng(5);
  WorkloadConfig cfg;
  cfg.mean_tests_per_client = 5.0;
  auto schedule = crowdsourced_schedule(world, world.clients, cfg, rng);
  std::map<std::uint32_t, int> per_client;
  for (const auto& req : schedule) per_client[req.client]++;
  int max_tests = 0;
  for (auto& [c, n] : per_client) max_tests = std::max(max_tests, n);
  // Enthusiast testers exist.
  EXPECT_GT(max_tests, 3 * 5);
  // And some clients never test.
  EXPECT_LT(per_client.size(), world.clients.size());
}

TEST(PaperData, Table3RowsComplete) {
  EXPECT_EQ(paper::table3_bdrmap().size(), 16u);
  for (const auto& r : paper::table3_bdrmap()) {
    EXPECT_GE(r.all_as, r.peer_as);
    EXPECT_GE(r.all_router, r.all_as);  // router counts exceed AS counts
  }
}

TEST(PaperData, Fig1FractionsInRange) {
  for (const auto& r : paper::fig1_adjacency()) {
    EXPECT_GT(r.one_hop_fraction, 0.0);
    EXPECT_LE(r.one_hop_fraction, 1.0);
  }
}

}  // namespace
}  // namespace netcong::gen
