file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_as_hops.dir/bench_fig1_as_hops.cpp.o"
  "CMakeFiles/bench_fig1_as_hops.dir/bench_fig1_as_hops.cpp.o.d"
  "CMakeFiles/bench_fig1_as_hops.dir/common.cpp.o"
  "CMakeFiles/bench_fig1_as_hops.dir/common.cpp.o.d"
  "bench_fig1_as_hops"
  "bench_fig1_as_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_as_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
