# Empty dependencies file for bench_sec54_snapshots.
# This may be replaced when dependencies are built.
