file(REMOVE_RECURSE
  "libnetcong_core.a"
)
