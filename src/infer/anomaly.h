#pragma once

// Change detection over campaign output (paper Section 6 concerns: routing
// is not stable over a measurement campaign, and naive aggregation across a
// path change poisons every per-link statistic). The detector consumes only
// observables — NDT records and traceroute corpora plus prefix2as — and
// flags (a) epoch candidates where the path system shifted (RTT onset,
// border-crossing share shift, crossings appearing or vanishing) and (b)
// specific inter-AS crossings that were withdrawn mid-campaign.
//
// Signals are binned into fixed-width time bins, corrected for the diurnal
// cycle by subtracting the per-hour-of-day median, robust-scaled by MAD,
// and run through a one-sided CUSUM. Ground truth from sim/adversary never
// enters here; core/anomaly_eval.h scores the output against it.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "infer/datasets.h"
#include "measure/ndt.h"
#include "measure/traceroute.h"
#include "topo/entities.h"

namespace netcong::infer {

struct AnomalyConfig {
  double bin_hours = 6.0;       // width of a detection bin
  int warmup_bins = 2;          // bins used to seed baselines, never alarmed
  double cusum_k = 0.5;         // CUSUM slack, in MAD-scaled units
  double cusum_h = 4.0;         // CUSUM decision threshold
  // A crossing must carry at least this share of a bin's crossings to
  // count as established (for withdrawal) or as new (for appearance).
  double min_share = 0.02;
  std::size_t min_samples_per_bin = 3;
  // Scale-invariant withdrawal evidence: historical observations/bin times
  // the silent-bin run must reach this many "missing" observations before
  // the silence reads as withdrawal rather than sampling noise (share is
  // useless at scale, where no single link is 2% of a continental corpus).
  double withdrawn_min_expected = 8.0;
  // Alarm onsets within this window collapse into one epoch candidate.
  double epoch_cluster_hours = 12.0;
};

enum class AnomalyKind {
  kRttShift,           // CUSUM crossing on diurnal-corrected median RTT
  kCrossingShift,      // CUSUM crossing on a border-crossing's share
  kNewCrossing,        // inter-AS crossing first seen after warmup
  kWithdrawnCrossing,  // established crossing that vanished for good
};

const char* anomaly_kind_name(AnomalyKind kind);

// One detector alarm. `onset_hours` is the left edge of the first bin in
// the anomalous regime (for withdrawals: the first bin with zero mass).
struct AnomalyFinding {
  AnomalyKind kind = AnomalyKind::kRttShift;
  double onset_hours = 0.0;
  double score = 0.0;  // CUSUM statistic or share at onset
  // For crossing findings: the (near, far) interface addresses.
  topo::IpAddr near_addr;
  topo::IpAddr far_addr;
  topo::Asn near_asn = 0;
  topo::Asn far_asn = 0;
};

struct AnomalyReport {
  // True when the campaign spans too few bins to detect anything; the
  // report is empty but well-formed.
  bool insufficient = false;
  std::size_t bins = 0;
  std::size_t tests_used = 0;
  std::size_t tests_skipped = 0;   // failed / webstats-less records
  std::size_t traces_used = 0;
  std::size_t traces_skipped = 0;  // traces with < 2 responded hops
  std::vector<AnomalyFinding> alarms;
  // Withdrawn-crossing findings, one per vanished (near, far) pair.
  std::vector<AnomalyFinding> withdrawn;
  // Clustered alarm onsets: the detector's epoch candidates, ascending.
  std::vector<double> epochs;
};

// Runs change detection over a campaign. `ip2as` maps hop addresses to
// origin ASNs for border-crossing extraction.
AnomalyReport detect_anomalies(const measure::CampaignResult& result,
                               const Ip2As& ip2as,
                               const AnomalyConfig& config = {});

}  // namespace netcong::infer
