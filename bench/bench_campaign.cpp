// Campaign-engine micro-bench: wall-clock of the month-long crowdsourced
// NDT campaign (the hot path every experiment bench funnels through), run
//   (a) serially with no path cache — the seed-equivalent reference, and
//   (b) with the parallel two-phase engine plus a shared PathCache.
// Emits BENCH_campaign.json with both timings, the speedup, and the path
// cache hit rate so later PRs have a perf trajectory. The two runs must
// produce identical results (the engine is deterministic across thread
// counts and with/without the cache); this is cross-checked here and
// enforced exhaustively by campaign_parallel_test.

#include <cstdio>
#include <thread>

#include "common.h"
#include "gen/workload.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/faults.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace {

// Order-independent fingerprint of campaign output (tests and traceroutes
// are compared in full by the unit tests; the bench just cross-checks).
double fingerprint(const netcong::measure::CampaignResult& r) {
  double acc = 0.0;
  for (const auto& t : r.tests) {
    acc += t.download_mbps + t.upload_mbps + t.flow_rtt_ms +
           static_cast<double>(t.truth_path.links.size());
  }
  for (const auto& tr : r.traceroutes) {
    acc += static_cast<double>(tr.hops.size()) + tr.utc_time_hours;
  }
  acc += static_cast<double>(r.traceroutes_skipped_busy +
                             r.traceroutes_skipped_cached +
                             r.traceroutes_failed);
  return acc;
}

}  // namespace

int main() {
  using namespace netcong;

  bench::print_header("BENCH campaign",
                      "parallel NDT campaign engine vs. serial reference");

  bench::Context ctx(bench::bench_config());
  const int days = 28;
  const double tests_per_client = 10.0;
  const std::uint64_t seed = 7;

  util::Rng schedule_rng(seed);
  gen::WorkloadConfig wl;
  wl.days = days;
  wl.mean_tests_per_client = tests_per_client;
  auto schedule =
      gen::crowdsourced_schedule(ctx.world, ctx.world.clients, wl,
                                 schedule_rng);
  std::printf("schedule: %zu requests over %d days (%zu clients)\n",
              schedule.size(), days, ctx.world.clients.size());

  measure::Platform mlab = ctx.mlab_platform();
  bench::BenchRecorder rec("campaign");

  // (a) serial reference: one worker, no path cache — the cost every test
  // paid in the seed implementation.
  measure::CampaignConfig serial_cfg;
  serial_cfg.threads = 1;
  measure::NdtCampaign serial_campaign(ctx.world, ctx.fwd, ctx.model, mlab,
                                       serial_cfg);
  util::Rng serial_rng(seed);
  bench::Stopwatch sw_serial;
  auto serial = serial_campaign.run(schedule, serial_rng);
  const double serial_ms = sw_serial.elapsed_ms();
  rec.record("serial", serial_ms);
  rec.stat("serial", "tests", static_cast<double>(serial.tests.size()));
  rec.stat("serial", "traceroutes",
           static_cast<double>(serial.traceroutes.size()));

  // (b) parallel engine with a shared path cache.
  const int threads = util::default_thread_count();
  measure::CampaignConfig par_cfg;
  par_cfg.threads = threads;
  measure::NdtCampaign par_campaign(ctx.world, ctx.fwd, ctx.model, mlab,
                                    par_cfg);
  route::PathCache cache(ctx.fwd);
  par_campaign.set_path_cache(&cache);
  util::Rng par_rng(seed);
  bench::Stopwatch sw_par;
  auto parallel = par_campaign.run(schedule, par_rng);
  const double parallel_ms = sw_par.elapsed_ms();
  rec.record("parallel", parallel_ms);
  route::PathCache::Stats cs = cache.stats();
  rec.stat("parallel", "threads", threads);
  rec.stat("parallel", "hardware_threads",
           static_cast<double>(std::thread::hardware_concurrency()));
  rec.stat("parallel", "tests", static_cast<double>(parallel.tests.size()));
  rec.stat("parallel", "cache_hits", static_cast<double>(cs.hits));
  rec.stat("parallel", "cache_misses", static_cast<double>(cs.misses));
  rec.stat("parallel", "cache_hit_rate", cs.hit_rate());
  rec.stat("parallel", "cached_paths", static_cast<double>(cache.size()));

  bool identical = fingerprint(serial) == fingerprint(parallel) &&
                   serial.tests.size() == parallel.tests.size() &&
                   serial.traceroutes.size() == parallel.traceroutes.size();
  std::printf("determinism cross-check: %s\n",
              identical ? "identical output" : "MISMATCH");

  // (c) cache-only serial run, isolating the PathCache win from threading
  // (relevant on small machines where the parallel phase cannot fan out).
  measure::CampaignConfig cached_cfg;
  cached_cfg.threads = 1;
  measure::NdtCampaign cached_campaign(ctx.world, ctx.fwd, ctx.model, mlab,
                                       cached_cfg);
  route::PathCache cache2(ctx.fwd);
  cached_campaign.set_path_cache(&cache2);
  util::Rng cached_rng(seed);
  bench::Stopwatch sw_cached;
  auto cached = cached_campaign.run(schedule, cached_rng);
  const double cached_ms = sw_cached.elapsed_ms();
  rec.record("serial_cached", cached_ms);
  rec.stat("serial_cached", "cache_hit_rate", cache2.stats().hit_rate());
  rec.stat("serial_cached", "tests",
           static_cast<double>(cached.tests.size()));

  // (d) fault layer attached but disabled — the price every clean campaign
  // pays for the injection sites existing at all. Contract: <2% over (b)
  // and bit-identical output. Best-of-3 on both sides to keep scheduler
  // noise out of the comparison.
  sim::FaultConfig off_cfg;  // enabled = false
  sim::FaultInjector off(off_cfg, seed);
  auto timed_run = [&](const sim::FaultInjector* inj, double* fp,
                       std::size_t* tests) {
    measure::NdtCampaign c(ctx.world, ctx.fwd, ctx.model, mlab, par_cfg);
    route::PathCache pc(ctx.fwd);
    c.set_path_cache(&pc);
    c.set_faults(inj);
    util::Rng r(seed);
    bench::Stopwatch sw;
    auto out = c.run(schedule, r);
    double ms = sw.elapsed_ms();
    if (fp) *fp = fingerprint(out);
    if (tests) *tests = out.tests.size();
    return ms;
  };
  // Clock noise (thermal throttling, co-tenants) on a shared box dwarfs
  // the effect being measured, so alternate the two variants and compare
  // the per-variant floors: the minimum over reps approaches each loop's
  // true cost while the noise only ever adds.
  double baseline_ms = 0.0, disabled_ms = 0.0;
  double disabled_fp = 0.0;
  std::size_t disabled_tests = 0;
  for (int rep = 0; rep < 3; ++rep) {
    double base = timed_run(nullptr, nullptr, nullptr);
    double dis = timed_run(&off, &disabled_fp, &disabled_tests);
    if (rep == 0 || base < baseline_ms) baseline_ms = base;
    if (rep == 0 || dis < disabled_ms) disabled_ms = dis;
  }
  const double overhead_pct =
      baseline_ms > 0.0 ? 100.0 * (disabled_ms / baseline_ms - 1.0) : 0.0;
  const bool disabled_identical =
      disabled_fp == fingerprint(parallel) &&
      disabled_tests == parallel.tests.size();
  rec.record("faulted_disabled", disabled_ms);
  rec.stat("faulted_disabled", "baseline_ms", baseline_ms);
  rec.stat("faulted_disabled", "disabled_overhead_pct", overhead_pct);
  rec.stat("faulted_disabled", "output_identical",
           disabled_identical ? 1.0 : 0.0);
  std::printf("fault layer disabled: %.0f ms vs %.0f ms baseline "
              "(%+.2f%% overhead, output %s)\n",
              disabled_ms, baseline_ms, overhead_pct,
              disabled_identical ? "identical" : "MISMATCH");

  // (e) faulted campaign at 20% severity: what the degradation costs, and
  // the DataQuality report the run ships with.
  sim::FaultInjector faults(sim::FaultConfig::scaled(0.2), seed);
  measure::NdtCampaign faulted_campaign(ctx.world, ctx.fwd, ctx.model, mlab,
                                        par_cfg);
  route::PathCache cache3(ctx.fwd);
  faulted_campaign.set_path_cache(&cache3);
  faulted_campaign.set_faults(&faults);
  util::Rng faulted_rng(seed);
  bench::Stopwatch sw_faulted;
  auto faulted = faulted_campaign.run(schedule, faulted_rng);
  const double faulted_ms = sw_faulted.elapsed_ms();
  rec.record("faulted", faulted_ms);
  const sim::DataQuality& q = faulted.quality;
  rec.stat("faulted", "severity", 0.2);
  rec.stat("faulted", "tests_attempted",
           static_cast<double>(q.tests_attempted));
  rec.stat("faulted", "tests_completed",
           static_cast<double>(q.tests_completed));
  rec.stat("faulted", "tests_aborted", static_cast<double>(q.tests_aborted));
  rec.stat("faulted", "tests_unserved",
           static_cast<double>(q.tests_unserved));
  rec.stat("faulted", "tests_retried", static_cast<double>(q.tests_retried));
  rec.stat("faulted", "traceroutes_completed",
           static_cast<double>(q.traceroutes_completed));
  rec.stat("faulted", "traceroutes_lost_crash",
           static_cast<double>(q.traceroutes_lost_crash));
  rec.stat("faulted", "quality_consistent", q.consistent() ? 1.0 : 0.0);
  std::printf("faulted (severity 0.2): %.0f ms, %zu/%zu tests completed, "
              "quality %s\n",
              faulted_ms, q.tests_completed, q.tests_attempted,
              q.consistent() ? "consistent" : "INCONSISTENT");

  // (f) observability enabled (metrics + tracing + per-test histogram) vs
  // the idle baseline where the same instrumentation is compiled in but the
  // registry is off — the default state every run above measured. Contract:
  // enabled <3% over idle, and bit-identical output (instrumentation never
  // touches an Rng). Same alternating best-of-3 floors as (d).
  obs::MetricsRegistry& mreg = obs::MetricsRegistry::global();
  obs::TraceRecorder& trec = obs::TraceRecorder::global();
  auto obs_run = [&](bool instrumented, double* fp, std::size_t* tests) {
    mreg.set_enabled(instrumented);
    trec.set_enabled(instrumented);
    double ms = timed_run(nullptr, fp, tests);
    mreg.set_enabled(false);
    trec.set_enabled(false);
    return ms;
  };
  double obs_idle_ms = 0.0, obs_on_ms = 0.0;
  double obs_fp = 0.0;
  std::size_t obs_tests = 0;
  for (int rep = 0; rep < 3; ++rep) {
    double idle = obs_run(false, nullptr, nullptr);
    double on = obs_run(true, &obs_fp, &obs_tests);
    if (rep == 0 || idle < obs_idle_ms) obs_idle_ms = idle;
    if (rep == 0 || on < obs_on_ms) obs_on_ms = on;
  }
  const double obs_overhead_pct =
      obs_idle_ms > 0.0 ? 100.0 * (obs_on_ms / obs_idle_ms - 1.0) : 0.0;
  const bool obs_identical =
      obs_fp == fingerprint(parallel) && obs_tests == parallel.tests.size();
  obs::MetricsSnapshot msnap = mreg.snapshot();
  rec.record("instrumented", obs_on_ms);
  rec.stat("instrumented", "idle_ms", obs_idle_ms);
  rec.stat("instrumented", "overhead_pct", obs_overhead_pct);
  rec.stat("instrumented", "output_identical", obs_identical ? 1.0 : 0.0);
  rec.stat("instrumented", "counters_registered",
           static_cast<double>(msnap.counters.size()));
  rec.stat("instrumented", "trace_events_dropped",
           static_cast<double>(trec.dropped()));
  std::printf("observability on: %.0f ms vs %.0f ms idle "
              "(%+.2f%% overhead, output %s)\n",
              obs_on_ms, obs_idle_ms, obs_overhead_pct,
              obs_identical ? "identical" : "MISMATCH");

  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  const double cache_speedup = cached_ms > 0.0 ? serial_ms / cached_ms : 0.0;
  rec.stat("parallel", "speedup_vs_serial", speedup);
  rec.stat("serial_cached", "speedup_vs_serial", cache_speedup);
  // Leave the registry on for write(): BENCH_campaign.json then embeds the
  // metrics snapshot accumulated by the instrumented runs above.
  mreg.set_enabled(true);
  rec.write();
  if (!obs_identical) {
    std::printf("ERROR: instrumented output diverged from uninstrumented\n");
    return 1;
  }
  if (!disabled_identical || !q.consistent()) {
    std::printf("ERROR: fault layer broke the clean campaign contract\n");
    return 1;
  }
  if (!identical) {
    std::printf("ERROR: parallel output diverged from serial reference\n");
    return 1;
  }
  std::printf("tests: %zu, traceroutes: %zu (busy-skipped %zu, cached %zu, "
              "failed %zu)\n",
              parallel.tests.size(), parallel.traceroutes.size(),
              parallel.traceroutes_skipped_busy,
              parallel.traceroutes_skipped_cached,
              parallel.traceroutes_failed);
  std::printf("path cache: %.1f%% hit rate (%llu hits / %llu misses)\n",
              100.0 * cs.hit_rate(),
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses));
  std::printf("serial %.0f ms | serial+cache %.0f ms | parallel+cache %.0f ms\n",
              serial_ms, cached_ms, parallel_ms);
  bench::print_footnote(util::format(
      "speedup vs. serial seed: %.2fx with %d thread(s); cache-only: %.2fx",
      speedup, threads, cache_speedup));
  return 0;
}
