#pragma once

// Geography helpers: great-circle distance between cities and the derived
// propagation latency. Test servers are selected by geographic proximity
// (paper Section 2), so geo drives both latency and server choice.

#include "topo/entities.h"

namespace netcong::topo {

// Great-circle distance in kilometers between two (lat, lon) points.
double haversine_km(double lat1, double lon1, double lat2, double lon2);

double city_distance_km(const City& a, const City& b);

// One-way propagation delay in ms for a fiber path of the given distance:
// light travels roughly 200 km/ms in fiber, plus fixed per-link overhead.
double propagation_delay_ms(double distance_km);

}  // namespace netcong::topo
