# Empty dependencies file for netcong_io.
# This may be replaced when dependencies are built.
