#pragma once

// Binary network tomography (Duffield, reference [18] in the paper): given
// end-to-end path observations labeled good/bad and each path's set of
// links, find a smallest set of "bad" links consistent with the
// observations. Links appearing on any good path are exonerated; the
// remaining bad paths are covered greedily (SCFS-style) or exactly for
// small instances.
//
// This is the rigorous tool the paper contrasts with "simplified AS-level
// tomography"; core/as_tomography.h implements the simplified version and
// its assumption checks.

#include <vector>

#include "topo/ids.h"

namespace netcong::core {

struct PathObservation {
  std::vector<topo::LinkId> links;
  bool bad = false;
};

struct TomographyResult {
  std::vector<topo::LinkId> bad_links;
  // False when some bad path contains only exonerated links (observations
  // are contradictory under the good/bad model).
  bool consistent = true;
  std::size_t uncovered_bad_paths = 0;
};

// Greedy minimal-set cover; near-optimal and fast (the standard approach).
TomographyResult greedy_binary_tomography(
    const std::vector<PathObservation>& observations);

// Exact smallest set via branch and bound; exponential, intended for small
// candidate sets (<= max_candidates after exoneration) — returns the greedy
// answer beyond that.
TomographyResult exact_binary_tomography(
    const std::vector<PathObservation>& observations,
    std::size_t max_candidates = 24);

// Evaluation helper: precision/recall of an inferred bad set vs ground truth.
struct TomographyScore {
  std::size_t inferred = 0;
  std::size_t truth = 0;
  std::size_t true_positives = 0;
  double precision() const {
    return inferred == 0 ? 1.0 : static_cast<double>(true_positives) / inferred;
  }
  double recall() const {
    return truth == 0 ? 1.0 : static_cast<double>(true_positives) / truth;
  }
};
TomographyScore score_tomography(const std::vector<topo::LinkId>& inferred,
                                 const std::vector<topo::LinkId>& truth);

}  // namespace netcong::core
