#pragma once

// Flow identity and router-level path representation shared by the
// forwarding engine, the traffic simulator and the measurement tools.

#include <cstdint>
#include <vector>

#include "topo/entities.h"
#include "topo/ids.h"
#include "topo/ip.h"

namespace netcong::route {

// 5-tuple-style flow identity. ECMP hashing is a pure function of this key,
// which is what makes Paris traceroute's fixed-header trick work: keeping
// the key constant pins the path, while classic traceroute's varying ports
// explore different ECMP branches.
struct FlowKey {
  topo::IpAddr src;
  topo::IpAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 6;  // TCP

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

// Stable hash of (key, salt); the salt distinguishes ECMP decisions at
// different points on the path.
std::uint64_t flow_hash(const FlowKey& key, std::uint64_t salt);

struct RouterHop {
  topo::RouterId router;
  // Interface the packet arrived on (the address a traceroute reply carries).
  // Invalid for the first hop past the source host.
  topo::InterfaceId in_iface;
  topo::LinkId in_link;  // invalid for the first hop
};

struct RouterPath {
  bool valid = false;
  std::vector<topo::Asn> as_path;  // src AS .. dst AS inclusive
  // Routers traversed from the source host's attachment router to the
  // destination host's attachment router. hops[i+1].in_link == links[i].
  std::vector<RouterHop> hops;
  std::vector<topo::LinkId> links;
  // One-way delay including both hosts' access links.
  double one_way_delay_ms = 0.0;

  std::size_t as_hop_count() const {
    return as_path.empty() ? 0 : as_path.size() - 1;
  }
};

}  // namespace netcong::route
