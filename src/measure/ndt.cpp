#include "measure/ndt.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "measure/corpus.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/flat_map.h"
#include "util/parallel.h"

namespace netcong::measure {

namespace {
// The NDT server's data port (constant across tests; the client side's
// ephemeral port carries the ECMP bucket).
constexpr std::uint16_t kNdtServerPort = 3001;

// Disjoint fork-stream families, one per campaign phase, so a draw in one
// phase can never shift another phase's randomness. Ids stay far below 2^40.
constexpr std::uint64_t kStreamRequest = 1ull << 40;
constexpr std::uint64_t kStreamTest = 2ull << 40;
constexpr std::uint64_t kStreamTrace = 3ull << 40;
constexpr std::uint64_t kStreamProbe = 4ull << 40;

// Campaign instrumentation. Counters are bumped only from the serial
// phases (planning and the accounting sweep), never inside parallel_for
// bodies, so enabling metrics cannot perturb the parallel phases at all —
// the instrumented campaign is bit-identical to the uninstrumented one by
// construction, and the hot loops pay nothing.
struct CampaignMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter runs = reg.counter("campaign.runs");
  obs::Counter attempted = reg.counter("campaign.tests_attempted");
  obs::Counter completed = reg.counter("campaign.tests_completed");
  obs::Counter aborted = reg.counter("campaign.tests_aborted");
  obs::Counter unserved = reg.counter("campaign.tests_unserved");
  obs::Counter failed = reg.counter("campaign.tests_failed");
  obs::Counter truncated = reg.counter("campaign.tests_truncated");
  obs::Counter retried = reg.counter("campaign.tests_retried");
  obs::Counter retry_attempts = reg.counter("campaign.retry_attempts");
  obs::Counter webstats_dropped = reg.counter("campaign.webstats_dropped");
  obs::Counter tr_completed = reg.counter("campaign.traceroutes_completed");
  obs::Counter tr_busy = reg.counter("campaign.traceroutes_skipped_busy");
  obs::Counter tr_cached = reg.counter("campaign.traceroutes_skipped_cached");
  obs::Counter tr_failed = reg.counter("campaign.traceroutes_failed");
  obs::Counter tr_crashed = reg.counter("campaign.traceroutes_lost_crash");
  obs::Gauge tests_per_sec = reg.gauge("campaign.tests_per_sec");
  obs::Histogram download =
      reg.histogram("campaign.download_mbps",
                    {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
};
const CampaignMetrics& campaign_metrics() {
  static const CampaignMetrics m;
  return m;
}

// One entry of the flat test plan phase 1 produces. Shared verbatim by the
// classic and the columnar engine so their downstream phases see identical
// inputs.
struct Planned {
  std::uint32_t client = 0;
  std::uint32_t server = 0;
  double when = 0.0;
  std::uint64_t id = 0;
  NdtStatus status = NdtStatus::kCompleted;  // kCompleted = "to run"
};

// Phase 1 (sequential, cheap): expand requests into a flat test plan.
// Under faults, a chosen server that is down triggers the client retry
// policy: bounded attempts against the next-nearest servers, each after a
// deterministic backoff. A test with no reachable server is planned as
// unserved — attempted, classified, never silently dropped.
std::vector<Planned> build_plan(const std::vector<gen::TestRequest>& schedule,
                                const util::Rng& root,
                                const Platform& platform,
                                const CampaignConfig& config, bool faulted,
                                const sim::FaultInjector* faults,
                                const sim::FaultConfig* fc,
                                sim::DataQuality& quality) {
  std::vector<Planned> plan;
  plan.reserve(schedule.size() *
               static_cast<std::size_t>(
                   std::max(config.servers_per_request, 1)));
  std::uint64_t next_id = 1;
  for (std::size_t r = 0; r < schedule.size(); ++r) {
    const gen::TestRequest& req = schedule[r];
    util::Rng req_rng = root.fork(kStreamRequest + r);
    std::vector<std::uint32_t> servers;
    if (config.servers_per_request <= 1) {
      servers.push_back(platform.select_server(req.client, req_rng));
    } else {
      servers = platform.select_servers_region(
          req.client, config.servers_per_request, req_rng);
    }
    double when = req.utc_time_hours;
    for (std::uint32_t server : servers) {
      Planned p{req.client, server, when, next_id++, NdtStatus::kCompleted};
      if (faulted && faults->server_down(p.server, p.when)) {
        util::Rng backoff_rng =
            faults->stream(sim::FaultSite::kRetryBackoff, p.id);
        std::vector<std::uint32_t> ladder =
            platform.nearest_servers(p.client, fc->max_retries + 4);
        bool served = false;
        std::size_t ladder_pos = 0;
        for (int attempt = 1; attempt <= fc->max_retries; ++attempt) {
          ++quality.retry_attempts;
          p.when += fc->backoff_base_s * attempt *
                    backoff_rng.uniform(0.75, 1.5) / 3600.0;
          // Next-nearest server not yet tried.
          while (ladder_pos < ladder.size() &&
                 ladder[ladder_pos] == p.server) {
            ++ladder_pos;
          }
          if (ladder_pos >= ladder.size()) break;
          std::uint32_t candidate = ladder[ladder_pos++];
          if (!faults->server_down(candidate, p.when)) {
            p.server = candidate;
            served = true;
            break;
          }
        }
        if (served) {
          ++quality.tests_retried;
        } else {
          p.status = NdtStatus::kUnserved;
        }
      }
      plan.push_back(p);
      when += config.ndt_duration_s / 3600.0;
    }
  }
  return plan;
}

// Serial accounting sweep over the per-slot test outcomes (the parallel
// phase writes no shared counters; metrics are bumped here too, so the hot
// loop stays untouched even with the registry enabled). The accessors
// abstract over AoS records and SoA columns.
template <typename StatusAt, typename TruncatedAt, typename WebstatsAt,
          typename DownloadAt>
void account_tests(std::size_t n, const StatusAt& status_at,
                   const TruncatedAt& truncated_at,
                   const WebstatsAt& webstats_at, const DownloadAt& download_at,
                   sim::DataQuality& quality, double simulate_s) {
  const CampaignMetrics& metrics = campaign_metrics();
  quality.tests_attempted = n;
  const bool metrics_on = metrics.reg.enabled();
  for (std::size_t i = 0; i < n; ++i) {
    switch (status_at(i)) {
      case NdtStatus::kCompleted:
        ++quality.tests_completed;
        if (truncated_at(i)) ++quality.tests_truncated;
        if (!webstats_at(i)) {
          ++quality.webstats_dropped;
          quality.fields_dropped += 2;  // flow_rtt_ms + retrans_rate
        }
        if (metrics_on) metrics.download.observe(download_at(i));
        break;
      case NdtStatus::kAborted: ++quality.tests_aborted; break;
      case NdtStatus::kUnserved: ++quality.tests_unserved; break;
      case NdtStatus::kFailed: ++quality.tests_failed; break;
    }
  }
  metrics.attempted.inc(quality.tests_attempted);
  metrics.completed.inc(quality.tests_completed);
  metrics.aborted.inc(quality.tests_aborted);
  metrics.unserved.inc(quality.tests_unserved);
  metrics.failed.inc(quality.tests_failed);
  metrics.truncated.inc(quality.tests_truncated);
  metrics.retried.inc(quality.tests_retried);
  metrics.retry_attempts.inc(quality.retry_attempts);
  metrics.webstats_dropped.inc(quality.webstats_dropped);
  if (simulate_s > 0.0) {
    metrics.tests_per_sec.set(static_cast<double>(n) / simulate_s);
  }
}

// Phase 3a (sequential, cheap): the server-side traceroute daemons'
// scheduling. A traceroute toward the client is skipped when the
// single-threaded daemon is busy, when it traced this client recently
// (cache), when the collection plainly fails (Section 4.1), or — under
// faults — when the daemon crashes, which also keeps it down for the
// restart delay. The busy/cache state is time-ordered per server, so this
// pass stays serial and deterministic. Only the *decision* is made here —
// the daemon's occupancy depends on a drawn trace duration, never on the
// trace's contents — so the simulation of the selected traceroutes can run
// in parallel afterwards. Only completed tests reach the daemon. `Result`
// is CampaignResult or ColumnarCampaignResult (identical counter fields).
template <typename Result, typename CompletedAt>
std::vector<std::size_t> schedule_traces(const std::vector<Planned>& plan,
                                         const CompletedAt& completed_at,
                                         const util::Rng& root,
                                         const CampaignConfig& config,
                                         bool faulted,
                                         const sim::FaultInjector* faults,
                                         const sim::FaultConfig* fc,
                                         Result& out) {
  util::FlatMap<std::uint32_t, double> tracer_busy_until;
  util::FlatMap<std::uint64_t, double> last_traced;
  std::vector<std::size_t> traced;  // indices into plan, in time order
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const Planned& p = plan[i];
    if (!completed_at(i)) continue;
    util::Rng tr_rng = root.fork(kStreamTrace + p.id);
    double tr_start = p.when + config.ndt_duration_s / 3600.0;
    double& busy = tracer_busy_until[p.server];
    std::uint64_t cache_key =
        (static_cast<std::uint64_t>(p.server) << 32) | p.client;
    auto cached = last_traced.find(cache_key);
    if (cached != last_traced.end() &&
        tr_start - cached->second <
            config.traceroute_cache_minutes / 60.0) {
      ++out.traceroutes_skipped_cached;
    } else if (busy > tr_start) {
      ++out.traceroutes_skipped_busy;
      ++out.quality.traceroutes_lost_busy;
    } else if (faulted && faults->fires(sim::FaultSite::kTracerouteCrash,
                                        p.id, fc->daemon_crash_prob)) {
      // Daemon crash: the due trace is lost and the daemon restarts after a
      // delay, so the next traces in the window get busy-skipped.
      busy = tr_start + fc->daemon_restart_s / 3600.0;
      ++out.quality.traceroutes_lost_crash;
    } else if (tr_rng.chance(config.traceroute_failure_prob)) {
      ++out.traceroutes_failed;
      ++out.quality.traceroutes_lost_failed;
    } else {
      double dur_s = tr_rng.uniform(config.traceroute_min_s,
                                    config.traceroute_max_s);
      busy = tr_start + dur_s / 3600.0;
      last_traced[cache_key] = tr_start;
      traced.push_back(i);
      if (faulted && faults->fires(sim::FaultSite::kProbeLoss, p.id,
                                   fc->probe_loss_prob)) {
        ++out.quality.traceroutes_degraded;
      }
    }
  }
  out.quality.traceroutes_suppressed_cached = out.traceroutes_skipped_cached;
  out.quality.traceroutes_completed = traced.size();
  out.quality.traceroutes_scheduled =
      traced.size() + out.quality.traceroutes_lost_busy +
      out.quality.traceroutes_lost_failed + out.quality.traceroutes_lost_crash;
  const CampaignMetrics& metrics = campaign_metrics();
  metrics.tr_completed.inc(out.quality.traceroutes_completed);
  metrics.tr_busy.inc(out.quality.traceroutes_lost_busy);
  metrics.tr_cached.inc(out.quality.traceroutes_suppressed_cached);
  metrics.tr_failed.inc(out.quality.traceroutes_lost_failed);
  metrics.tr_crashed.inc(out.quality.traceroutes_lost_crash);
  return traced;
}

// Sink writing hops into a scratch vector of PackedTraceHop (flushed into
// an arena once the trace is complete).
struct PackedSink {
  std::vector<PackedTraceHop>& out;
  std::size_t stars = 0;
  void hop(int ttl, bool responded, topo::IpAddr addr, double rtt_ms,
           topo::InterfaceId iface) {
    PackedTraceHop h;
    h.ttl = ttl;
    h.responded = responded ? 1 : 0;
    if (responded) {
      h.addr = addr;
      h.rtt_ms = rtt_ms;
      h.iface = iface;
    } else {
      ++stars;
    }
    out.push_back(h);
  }
};
}  // namespace

const char* ndt_status_name(NdtStatus status) {
  switch (status) {
    case NdtStatus::kCompleted: return "completed";
    case NdtStatus::kAborted: return "aborted";
    case NdtStatus::kUnserved: return "unserved";
    case NdtStatus::kFailed: return "failed";
  }
  return "?";
}

NdtCampaign::NdtCampaign(const gen::World& world, const route::Forwarder& fwd,
                         const sim::ThroughputModel& model,
                         const Platform& platform, CampaignConfig config)
    : world_(&world),
      fwd_(&fwd),
      model_(&model),
      platform_(&platform),
      config_(config) {}

NdtCampaign::SingleOutcome NdtCampaign::simulate_single(
    std::uint32_t client, std::uint32_t server, double utc_time_hours,
    util::Rng& rng) const {
  const topo::Topology& topo = *world_->topo;
  SingleOutcome so;

  // Downstream: data flows server -> client; the path is computed from the
  // server, matching the direction M-Lab's server-side traceroute sees.
  int bucket = static_cast<int>(
      rng.uniform_int(0, std::max(config_.ecmp_buckets, 1) - 1));
  route::FlowKey key = route::PathCache::ecmp_key(
      topo.host(server).addr, topo.host(client).addr, kNdtServerPort, bucket);
  // Adversarial scenarios act through the key and the route view: churn
  // salts the key after the epoch, withdrawal swaps in the scenario's
  // post-epoch view. The rewritten key is also the cache/pool identity, so
  // pre- and post-epoch paths never alias under one key.
  bool post_view = adversary_ != nullptr && adversary_->enabled() &&
                   adversary_->rewrite_test_key(server, key.dst,
                                                utc_time_hours, key);
  so.path_key = route::PathCache::make_key(server, key.dst, key);
  so.path = post_view
                ? adversary_->post_cache().path_shared(server, key.dst, key)
                : cache_ ? cache_->path_shared(server, key.dst, key)
                         : std::make_shared<const route::RouterPath>(
                               fwd_->path(server, key.dst, key));
  if (!so.path->valid) return so;

  sim::ThroughputEstimate est = model_->estimate(
      *so.path, topo.host(client), topo.host(server), utc_time_hours, rng);
  so.download_mbps = est.goodput_mbps;
  so.flow_rtt_ms = est.flow_rtt_ms;
  so.retrans_rate = est.retrans_rate;
  so.congestion_signals = est.congestion_signals;
  so.truth_bottleneck = est.bottleneck;
  so.truth_access_limited = est.access_limited;

  // Upstream: bounded by the client's upload tier; the network leg reuses
  // the downstream estimate (the reverse path may differ in reality, but
  // NDT upload is almost always access-limited, which this preserves).
  so.upload_mbps =
      std::min(topo.host(client).tier.up_mbps * topo.host(client).home_quality,
               est.goodput_mbps);
  return so;
}

NdtRecord NdtCampaign::run_single(std::uint32_t client, std::uint32_t server,
                                  double utc_time_hours,
                                  std::uint64_t test_id,
                                  util::Rng& rng) const {
  const topo::Topology& topo = *world_->topo;
  NdtRecord rec;
  rec.test_id = test_id;
  rec.client = client;
  rec.server = server;
  rec.utc_time_hours = utc_time_hours;
  rec.client_asn = topo.host(client).asn;
  rec.server_asn = topo.host(server).asn;

  SingleOutcome so = simulate_single(client, server, utc_time_hours, rng);
  rec.truth_path = *so.path;
  if (!so.path->valid) return rec;
  rec.download_mbps = so.download_mbps;
  rec.upload_mbps = so.upload_mbps;
  rec.flow_rtt_ms = so.flow_rtt_ms;
  rec.retrans_rate = so.retrans_rate;
  rec.congestion_signals = so.congestion_signals;
  rec.truth_bottleneck = so.truth_bottleneck;
  rec.truth_access_limited = so.truth_access_limited;
  return rec;
}

CampaignResult NdtCampaign::run(const std::vector<gen::TestRequest>& schedule,
                                util::Rng& rng) const {
  obs::Span run_span("campaign.run");
  campaign_metrics().runs.inc();
  CampaignResult out;
  const bool faulted = faults_ != nullptr && faults_->enabled();
  const sim::FaultConfig* fc = faulted ? &faults_->config() : nullptr;

  // RNG discipline: every stochastic decision draws from a generator forked
  // off `root` by a stable id (request index or test id), never from one
  // shared sequential stream — and every *fault* decision draws from the
  // injector's (site, item) streams. Each phase's draws are therefore
  // independent of the other phases and of how the parallel phase is
  // scheduled, making the campaign output bit-identical for any worker
  // count, with or without faults.
  const util::Rng root = rng.fork("ndt-campaign");

  std::optional<obs::Span> phase_span;
  phase_span.emplace("campaign.plan");
  std::vector<Planned> plan = build_plan(schedule, root, *platform_, config_,
                                         faulted, faults_, fc, out.quality);

  // Phase 2 (parallel): simulate every runnable test. Each slot is written
  // by exactly one iteration and each test's randomness comes from a fork
  // on its id; fault draws come from the injector's per-site streams. An
  // iteration never throws out of the loop — internal errors classify the
  // record as kFailed instead.
  const double dur_h = config_.ndt_duration_s / 3600.0;
  out.tests.resize(plan.size());
  phase_span.emplace("campaign.simulate");
  const auto simulate_start = std::chrono::steady_clock::now();
  util::parallel_for(plan.size(), config_.threads, [&](std::size_t i) {
    const Planned& p = plan[i];
    NdtRecord& rec = out.tests[i];
    rec.test_id = p.id;
    rec.client = p.client;
    rec.server = p.server;
    rec.utc_time_hours = p.when;
    rec.client_asn = world_->topo->host(p.client).asn;
    rec.server_asn = world_->topo->host(p.server).asn;
    rec.status = p.status;
    if (p.status != NdtStatus::kCompleted) return;  // unserved stub

    if (faulted &&
        (faults_->fires(sim::FaultSite::kNdtAbort, p.id, fc->ndt_abort_prob) ||
         faults_->server_down(p.server, p.when + dur_h))) {
      // Abort fault, or the server flapped away mid-test.
      rec.status = NdtStatus::kAborted;
      return;
    }
    try {
      util::Rng test_rng = root.fork(kStreamTest + p.id);
      rec = run_single(p.client, p.server, p.when, p.id, test_rng);
    } catch (...) {
      rec.status = NdtStatus::kFailed;
      return;
    }
    if (!faulted) return;
    util::Rng trunc_rng = faults_->stream(sim::FaultSite::kNdtTruncate, p.id);
    if (trunc_rng.chance(fc->ndt_truncate_prob)) {
      // Throughput measured on a partial transfer: biased by slow-start
      // weight or a missed late dip, in either direction.
      rec.truncated = true;
      rec.download_mbps *= trunc_rng.uniform(0.5, 1.1);
    }
    if (faults_->fires(sim::FaultSite::kWebStatsDrop, p.id,
                       fc->webstats_drop_prob)) {
      rec.has_webstats = false;
      rec.flow_rtt_ms = 0.0;
      rec.retrans_rate = 0.0;
    }
  });

  const double simulate_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    simulate_start)
          .count();
  phase_span.emplace("campaign.account");
  account_tests(
      plan.size(), [&](std::size_t i) { return out.tests[i].status; },
      [&](std::size_t i) { return out.tests[i].truncated; },
      [&](std::size_t i) { return out.tests[i].has_webstats; },
      [&](std::size_t i) { return out.tests[i].download_mbps; }, out.quality,
      simulate_s);

  phase_span.emplace("campaign.trace_schedule");
  std::vector<std::size_t> traced = schedule_traces(
      plan,
      [&](std::size_t i) {
        return out.tests[i].status == NdtStatus::kCompleted;
      },
      root, config_, faulted, faults_, fc, out);

  // Phase 3b (parallel): simulate the selected traceroutes. Probe artifacts
  // (stars, silent clients, missing PTRs) draw from their own fork stream,
  // keyed on the test id, so the records are independent of worker count
  // and of the scheduling draws above. A trace that drew the probe-loss
  // fault runs with an elevated star probability (a lossy probe path).
  out.traceroutes.resize(traced.size());
  phase_span.emplace("campaign.trace_simulate");
  util::parallel_for(traced.size(), config_.threads, [&](std::size_t t) {
    const Planned& p = plan[traced[t]];
    util::Rng probe_rng = root.fork(kStreamProbe + p.id);
    double tr_start = p.when + config_.ndt_duration_s / 3600.0;
    TracerouteOptions opts = config_.traceroute;
    if (adversary_ != nullptr) opts.adversary = adversary_;
    if (faulted && faults_->fires(sim::FaultSite::kProbeLoss, p.id,
                                  fc->probe_loss_prob)) {
      opts.star_prob =
          std::min(0.9, opts.star_prob + fc->probe_loss_extra_star);
    }
    out.traceroutes[t] = run_traceroute(
        *world_->topo, *fwd_, p.server, world_->topo->host(p.client).addr,
        tr_start, opts, probe_rng, cache_);
  });
  return out;
}

ColumnarCampaignResult NdtCampaign::run_columnar(
    const std::vector<gen::TestRequest>& schedule, util::Rng& rng) const {
  obs::Span run_span("campaign.run");
  campaign_metrics().runs.inc();
  const topo::Topology& topo = *world_->topo;
  ColumnarCampaignResult out;
  out.topo = &topo;
  const bool faulted = faults_ != nullptr && faults_->enabled();
  const sim::FaultConfig* fc = faulted ? &faults_->config() : nullptr;

  // Same RNG discipline as run(): see the comment there. Every per-item
  // stream id below matches run()'s, so the two engines draw identical
  // sequences item for item.
  const util::Rng root = rng.fork("ndt-campaign");

  std::optional<obs::Span> phase_span;
  phase_span.emplace("campaign.plan");
  std::vector<Planned> plan = build_plan(schedule, root, *platform_, config_,
                                         faulted, faults_, fc, out.quality);

  // Phase 2 (parallel): as in run(), but the outcome lands in SoA columns
  // and the path lands in a per-slot shared_ptr; paths are interned into
  // the pool serially afterwards (first-seen slot order), so the pool
  // contents are independent of thread count.
  const double dur_h = config_.ndt_duration_s / 3600.0;
  NdtCorpus& tests = out.tests;
  tests.resize(plan.size());
  std::vector<std::shared_ptr<const route::RouterPath>> slot_path(plan.size());
  std::vector<route::PathCache::Key> slot_key(plan.size());
  phase_span.emplace("campaign.simulate");
  const auto simulate_start = std::chrono::steady_clock::now();
  util::parallel_for(plan.size(), config_.threads, [&](std::size_t i) {
    const Planned& p = plan[i];
    tests.test_id[i] = p.id;
    tests.client[i] = p.client;
    tests.server[i] = p.server;
    tests.utc_time_hours[i] = p.when;
    tests.client_asn[i] = topo.host(p.client).asn;
    tests.server_asn[i] = topo.host(p.server).asn;
    tests.status[i] = p.status;
    if (p.status != NdtStatus::kCompleted) return;  // unserved stub

    if (faulted &&
        (faults_->fires(sim::FaultSite::kNdtAbort, p.id, fc->ndt_abort_prob) ||
         faults_->server_down(p.server, p.when + dur_h))) {
      tests.status[i] = NdtStatus::kAborted;
      return;
    }
    try {
      util::Rng test_rng = root.fork(kStreamTest + p.id);
      SingleOutcome so = simulate_single(p.client, p.server, p.when, test_rng);
      slot_path[i] = std::move(so.path);
      slot_key[i] = so.path_key;
      tests.download_mbps[i] = so.download_mbps;
      tests.upload_mbps[i] = so.upload_mbps;
      tests.flow_rtt_ms[i] = so.flow_rtt_ms;
      tests.retrans_rate[i] = so.retrans_rate;
      tests.congestion_signals[i] = so.congestion_signals;
      tests.truth_bottleneck[i] = so.truth_bottleneck;
      tests.truth_access_limited[i] = so.truth_access_limited ? 1 : 0;
    } catch (...) {
      tests.status[i] = NdtStatus::kFailed;
      return;
    }
    if (!faulted) return;
    util::Rng trunc_rng = faults_->stream(sim::FaultSite::kNdtTruncate, p.id);
    if (trunc_rng.chance(fc->ndt_truncate_prob)) {
      tests.truncated[i] = 1;
      tests.download_mbps[i] *= trunc_rng.uniform(0.5, 1.1);
    }
    if (faults_->fires(sim::FaultSite::kWebStatsDrop, p.id,
                       fc->webstats_drop_prob)) {
      tests.has_webstats[i] = 0;
      tests.flow_rtt_ms[i] = 0.0;
      tests.retrans_rate[i] = 0.0;
    }
  });

  const double simulate_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    simulate_start)
          .count();
  phase_span.emplace("campaign.intern");
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (slot_path[i]) {
      tests.truth_path[i] =
          out.paths.intern(slot_key[i], std::move(slot_path[i]));
    }
  }
  slot_path.clear();
  slot_path.shrink_to_fit();
  slot_key.clear();
  slot_key.shrink_to_fit();

  phase_span.emplace("campaign.account");
  account_tests(
      plan.size(), [&](std::size_t i) { return tests.status[i]; },
      [&](std::size_t i) { return tests.truncated[i] != 0; },
      [&](std::size_t i) { return tests.has_webstats[i] != 0; },
      [&](std::size_t i) { return tests.download_mbps[i]; }, out.quality,
      simulate_s);

  phase_span.emplace("campaign.trace_schedule");
  std::vector<std::size_t> traced = schedule_traces(
      plan,
      [&](std::size_t i) { return tests.status[i] == NdtStatus::kCompleted; },
      root, config_, faulted, faults_, fc, out);

  // Phase 3b (parallel): the traces are built in fixed-size blocks — the
  // block split depends only on `traced`, never on the worker count — each
  // block writing a private arena and private columns; a serial merge in
  // block order then concatenates them, so the corpus layout is
  // bit-identical for any thread count. Hops are packed into the block
  // arena; truth paths are interned serially during the merge.
  constexpr std::size_t kTraceBlock = 1024;
  struct TraceBlock {
    util::Arena arena{64 * 1024};
    std::vector<std::uint8_t> reached;
    std::vector<const PackedTraceHop*> hops;
    std::vector<std::uint32_t> hop_count;
    std::vector<std::shared_ptr<const route::RouterPath>> path;
    std::vector<route::PathCache::Key> key;
  };
  const std::size_t num_blocks = (traced.size() + kTraceBlock - 1) / kTraceBlock;
  std::vector<TraceBlock> blocks(num_blocks);
  phase_span.emplace("campaign.trace_simulate");
  util::parallel_for(num_blocks, config_.threads, [&](std::size_t b) {
    TraceBlock& blk = blocks[b];
    const std::size_t begin = b * kTraceBlock;
    const std::size_t end = std::min(traced.size(), begin + kTraceBlock);
    blk.reached.reserve(end - begin);
    blk.hops.reserve(end - begin);
    blk.hop_count.reserve(end - begin);
    blk.path.reserve(end - begin);
    blk.key.reserve(end - begin);
    std::vector<PackedTraceHop> scratch;  // reused across the block's traces
    for (std::size_t t = begin; t < end; ++t) {
      const Planned& p = plan[traced[t]];
      util::Rng probe_rng = root.fork(kStreamProbe + p.id);
      double tr_start = p.when + config_.ndt_duration_s / 3600.0;
      TracerouteOptions opts = config_.traceroute;
      if (adversary_ != nullptr) opts.adversary = adversary_;
      if (faulted && faults_->fires(sim::FaultSite::kProbeLoss, p.id,
                                    fc->probe_loss_prob)) {
        opts.star_prob =
            std::min(0.9, opts.star_prob + fc->probe_loss_extra_star);
      }
      topo::IpAddr dst = topo.host(p.client).addr;
      route::FlowKey key = trace_flow_key(topo, p.server, dst, opts, probe_rng);
      // Mirror of run_traceroute's adversary hook, kept draw-aligned so the
      // columnar engine stays bit-identical to the classic one.
      const sim::AdversaryScenario* adv =
          opts.adversary != nullptr && opts.adversary->enabled()
              ? opts.adversary
              : nullptr;
      bool post_view =
          adv != nullptr &&
          adv->rewrite_trace_key(p.server, dst, tr_start, key);
      std::shared_ptr<const route::RouterPath> path =
          post_view ? adv->post_cache().path_shared(p.server, dst, key)
          : cache_ ? cache_->path_shared(p.server, dst, key)
                   : std::make_shared<const route::RouterPath>(
                         fwd_->path(p.server, dst, key));
      blk.path.push_back(path);
      blk.key.push_back(route::PathCache::make_key(p.server, dst, key));
      if (!path->valid) {
        note_traceroute_metrics(0, 0, false, true);
        blk.reached.push_back(0);
        blk.hops.push_back(nullptr);
        blk.hop_count.push_back(0);
        continue;
      }
      scratch.clear();
      PackedSink sink{scratch};
      bool reached = simulate_trace(topo, *path, p.server, dst, tr_start, opts,
                                    probe_rng, sink);
      note_traceroute_metrics(scratch.size(), sink.stars, reached, false);
      blk.reached.push_back(reached ? 1 : 0);
      blk.hops.push_back(
          scratch.empty() ? nullptr
                          : blk.arena.append(scratch.data(), scratch.size()));
      blk.hop_count.push_back(static_cast<std::uint32_t>(scratch.size()));
    }
  });

  phase_span.emplace("campaign.trace_merge");
  TraceCorpus& traces = out.traceroutes;
  traces.src_host.reserve(traced.size());
  traces.dst.reserve(traced.size());
  traces.utc_time_hours.reserve(traced.size());
  traces.reached_dst.reserve(traced.size());
  traces.truth.reserve(traced.size());
  traces.hops.reserve(traced.size());
  traces.hop_count.reserve(traced.size());
  traces.arenas.reserve(num_blocks);
  std::size_t t = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    TraceBlock& blk = blocks[b];
    for (std::size_t j = 0; j < blk.hops.size(); ++j, ++t) {
      const Planned& p = plan[traced[t]];
      traces.src_host.push_back(p.server);
      traces.dst.push_back(topo.host(p.client).addr);
      traces.utc_time_hours.push_back(p.when +
                                      config_.ndt_duration_s / 3600.0);
      traces.reached_dst.push_back(blk.reached[j]);
      traces.truth.push_back(
          out.paths.intern(blk.key[j], std::move(blk.path[j])));
      traces.hops.push_back(blk.hops[j]);
      traces.hop_count.push_back(blk.hop_count[j]);
    }
    traces.arenas.push_back(std::move(blk.arena));
  }
  return out;
}

}  // namespace netcong::measure
