// Collects every BENCH_<label>.json in a directory into one BENCH_all.json
// so a campaign of bench runs ships as a single artifact:
//
//   bench_aggregate [DIR]          # default: current directory
//
// Output shape: {"generated_by": ..., "benches": {"<label>": <raw json>}}.
// The per-bench payloads are embedded verbatim (they are already JSON), so
// the aggregator needs no JSON parser — it only validates non-emptiness.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return in.good() || in.eof();
}

// "BENCH_campaign.json" -> "campaign"; empty when the name doesn't match.
std::string label_of(const std::string& filename) {
  const std::string prefix = "BENCH_";
  const std::string suffix = ".json";
  if (filename.size() <= prefix.size() + suffix.size()) return "";
  if (filename.rfind(prefix, 0) != 0) return "";
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return "";
  }
  return filename.substr(prefix.size(),
                         filename.size() - prefix.size() - suffix.size());
}

// Strips trailing whitespace so embedded payloads don't carry stray
// newlines into the combined document.
std::string trimmed(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r' ||
                        s.back() == ' ' || s.back() == '\t')) {
    s.pop_back();
  }
  return s;
}

// Last occurrence of `"<key>":` in a bench payload, or a negative value
// when absent. A targeted string scan keeps the aggregator parser-free;
// "last" means a key recorded in several phases reports the final one
// (peak RSS is monotone, rates/percentiles describe the closing phase).
double stat_of(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = body.rfind(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(body.c_str() + pos + needle.size(), nullptr);
}

// Cross-bench summary keys surfaced at the top level of BENCH_all.json.
// Any bench that records one of these (BenchRecorder stat names) appears
// in the corresponding section; benches without it are listed as null.
const char* const kSummaryKeys[] = {
    "peak_rss_mb",
    "events_per_sec",
    "staleness_p50_ms",
    "staleness_p99_ms",
    "wal_append_events_per_sec",
    "recovery_events_per_sec",
};

}  // namespace

int main(int argc, char** argv) {
  fs::path dir = argc > 1 ? fs::path(argv[1]) : fs::current_path();
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "bench_aggregate: %s is not a directory\n",
                 dir.string().c_str());
    return 1;
  }

  // std::map for a deterministic (sorted) label order in the output.
  std::map<std::string, std::string> benches;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string label = label_of(entry.path().filename().string());
    if (label.empty() || label == "all") continue;
    std::string body;
    if (!read_file(entry.path(), &body) || trimmed(body).empty()) {
      std::fprintf(stderr, "bench_aggregate: skipping unreadable/empty %s\n",
                   entry.path().string().c_str());
      continue;
    }
    benches[label] = trimmed(body);
  }
  if (ec) {
    std::fprintf(stderr, "bench_aggregate: cannot scan %s: %s\n",
                 dir.string().c_str(), ec.message().c_str());
    return 1;
  }
  if (benches.empty()) {
    std::fprintf(stderr, "bench_aggregate: no BENCH_*.json in %s\n",
                 dir.string().c_str());
    return 1;
  }

  fs::path out_path = dir / "BENCH_all.json";
  std::FILE* f = std::fopen(out_path.string().c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_aggregate: cannot open %s\n",
                 out_path.string().c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"generated_by\": \"bench_aggregate\",\n");
  std::fprintf(f, "  \"bench_count\": %zu,\n", benches.size());
  std::fprintf(f, "  \"benches\": {\n");
  std::size_t i = 0;
  for (const auto& [label, body] : benches) {
    // Indent the embedded document so the combined file stays readable.
    std::string indented;
    indented.reserve(body.size());
    for (char c : body) {
      indented.push_back(c);
      if (c == '\n') indented += "    ";
    }
    std::fprintf(f, "    \"%s\": %s%s\n", label.c_str(), indented.c_str(),
                 ++i < benches.size() ? "," : "");
  }
  // Cross-bench summaries, one section per key (memory footprint, ingest
  // rate, snapshot staleness, ...), so a perf trajectory tracks every
  // headline number without digging into the embedded payloads. A key some
  // bench never recorded shows as null for that bench; a section no bench
  // recorded is omitted entirely.
  const std::size_t nkeys = sizeof(kSummaryKeys) / sizeof(kSummaryKeys[0]);
  bool any_summary = false;
  for (std::size_t k = 0; k < nkeys; ++k) {
    for (const auto& [label, body] : benches) {
      any_summary = any_summary || stat_of(body, kSummaryKeys[k]) >= 0.0;
    }
  }
  std::fprintf(f, "  }%s\n", any_summary ? "," : "");
  for (std::size_t k = 0; k < nkeys; ++k) {
    const char* key = kSummaryKeys[k];
    bool any = false;
    for (const auto& [label, body] : benches) {
      any = any || stat_of(body, key) >= 0.0;
    }
    if (!any) continue;
    std::fprintf(f, "  \"%s\": {\n", key);
    i = 0;
    for (const auto& [label, body] : benches) {
      double value = stat_of(body, key);
      if (value >= 0.0) {
        std::fprintf(f, "    \"%s\": %.3f%s\n", label.c_str(), value,
                     ++i < benches.size() ? "," : "");
      } else {
        std::fprintf(f, "    \"%s\": null%s\n", label.c_str(),
                     ++i < benches.size() ? "," : "");
      }
    }
    // peak_rss_mb is never the last key only when a later section follows;
    // emit the comma lazily by checking whether any remaining key appears.
    bool more = false;
    for (std::size_t k2 = k + 1; k2 < nkeys; ++k2) {
      for (const auto& [label, body] : benches) {
        more = more || stat_of(body, kSummaryKeys[k2]) >= 0.0;
      }
    }
    std::fprintf(f, "  }%s\n", more ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu benches)\n", out_path.string().c_str(),
              benches.size());
  for (const auto& [label, body] : benches) {
    double rss = stat_of(body, "peak_rss_mb");
    if (rss < 0.0) continue;
    std::printf("  %-20s peak rss %8.1f MiB", label.c_str(), rss);
    double eps = stat_of(body, "events_per_sec");
    if (eps >= 0.0) std::printf("  %10.0f events/sec", eps);
    double p99 = stat_of(body, "staleness_p99_ms");
    if (p99 >= 0.0) std::printf("  staleness p99 %.1f ms", p99);
    std::printf("\n");
  }
  return 0;
}
