#include "gen/workload.h"

#include <algorithm>
#include <cmath>

#include "sim/diurnal.h"

namespace netcong::gen {

std::vector<TestRequest> crowdsourced_schedule(
    const World& world, const std::vector<std::uint32_t>& clients,
    const WorkloadConfig& config, util::Rng& rng) {
  std::vector<TestRequest> out;
  const double horizon = config.days * 24.0;

  for (std::uint32_t client : clients) {
    // Per-client activity: Pareto-distributed multiplier normalized to mean
    // 1 (mean of Pareto(xm, a) is xm * a/(a-1)).
    double a = config.activity_pareto_alpha;
    double xm = (a - 1.0) / a;
    double activity = rng.pareto(xm, a);
    int n_tests = rng.poisson(config.mean_tests_per_client * activity);
    if (n_tests <= 0) continue;

    int offset =
        world.topo->city(world.topo->host(client).city).utc_offset_hours;

    for (int t = 0; t < n_tests; ++t) {
      double when;
      if (config.diurnal_bias) {
        // Rejection-sample the local hour against the volume curve.
        double local = 0.0;
        for (int tries = 0; tries < 64; ++tries) {
          local = rng.uniform(0.0, 24.0);
          double accept = sim::test_volume_multiplier(local) / 2.2;
          if (rng.chance(accept)) break;
        }
        double day = std::floor(rng.uniform(0.0, config.days));
        // Convert local back to UTC.
        double utc = local - offset;
        when = day * 24.0 + utc;
        while (when < 0) when += 24.0;
        while (when >= horizon) when -= 24.0;
      } else {
        when = rng.uniform(0.0, horizon);
      }
      out.push_back(TestRequest{client, when});
      // Repeat session: a burst of re-runs over the next few minutes.
      if (rng.chance(config.repeat_session_prob)) {
        int repeats = static_cast<int>(rng.uniform_int(1, config.repeat_max));
        for (int r = 0; r < repeats; ++r) {
          double offset_h =
              rng.uniform(1.0, config.repeat_window_minutes) / 60.0;
          double t = when + offset_h;
          if (t < horizon) out.push_back(TestRequest{client, t});
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TestRequest& x, const TestRequest& y) {
              return x.utc_time_hours < y.utc_time_hours;
            });
  return out;
}

}  // namespace netcong::gen
