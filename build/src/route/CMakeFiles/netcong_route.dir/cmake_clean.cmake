file(REMOVE_RECURSE
  "CMakeFiles/netcong_route.dir/bgp.cpp.o"
  "CMakeFiles/netcong_route.dir/bgp.cpp.o.d"
  "CMakeFiles/netcong_route.dir/forwarding.cpp.o"
  "CMakeFiles/netcong_route.dir/forwarding.cpp.o.d"
  "libnetcong_route.a"
  "libnetcong_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcong_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
