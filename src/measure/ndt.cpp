#include "measure/ndt.h"

#include <algorithm>
#include <unordered_map>

namespace netcong::measure {

NdtCampaign::NdtCampaign(const gen::World& world, const route::Forwarder& fwd,
                         const sim::ThroughputModel& model,
                         const Platform& platform, CampaignConfig config)
    : world_(&world),
      fwd_(&fwd),
      model_(&model),
      platform_(&platform),
      config_(config) {}

NdtRecord NdtCampaign::run_single(std::uint32_t client, std::uint32_t server,
                                  double utc_time_hours,
                                  std::uint64_t test_id,
                                  util::Rng& rng) const {
  const topo::Topology& topo = *world_->topo;
  NdtRecord rec;
  rec.test_id = test_id;
  rec.client = client;
  rec.server = server;
  rec.utc_time_hours = utc_time_hours;
  rec.client_asn = topo.host(client).asn;
  rec.server_asn = topo.host(server).asn;

  // Downstream: data flows server -> client; the path is computed from the
  // server, matching the direction M-Lab's server-side traceroute sees.
  route::FlowKey key;
  key.src = topo.host(server).addr;
  key.dst = topo.host(client).addr;
  key.src_port = 3001;
  key.dst_port = static_cast<std::uint16_t>(rng.uniform_int(32768, 60999));
  route::RouterPath down = fwd_->path(server, key.dst, key);
  rec.truth_path = down;
  if (!down.valid) return rec;

  sim::ThroughputEstimate est = model_->estimate(
      down, topo.host(client), topo.host(server), utc_time_hours, rng);
  rec.download_mbps = est.goodput_mbps;
  rec.flow_rtt_ms = est.flow_rtt_ms;
  rec.retrans_rate = est.retrans_rate;
  rec.congestion_signals = est.congestion_signals;
  rec.truth_bottleneck = est.bottleneck;
  rec.truth_access_limited = est.access_limited;

  // Upstream: bounded by the client's upload tier; reuse the same path (the
  // reverse path may differ in reality, but NDT upload is almost always
  // access-limited, which this preserves).
  sim::ThroughputEstimate up = model_->estimate(
      down, topo.host(client), topo.host(server), utc_time_hours, rng);
  rec.upload_mbps =
      std::min(topo.host(client).tier.up_mbps * topo.host(client).home_quality,
               up.goodput_mbps);
  return rec;
}

CampaignResult NdtCampaign::run(const std::vector<gen::TestRequest>& schedule,
                                util::Rng& rng) const {
  CampaignResult out;
  // Per-server time when the single-threaded traceroute daemon frees up.
  std::unordered_map<std::uint32_t, double> tracer_busy_until;
  // Per-(server, client) time of the last traceroute (the daemon's cache).
  std::unordered_map<std::uint64_t, double> last_traced;
  std::uint64_t next_id = 1;

  for (const auto& req : schedule) {
    std::vector<std::uint32_t> servers;
    if (config_.servers_per_request <= 1) {
      servers.push_back(platform_->select_server(req.client, rng));
    } else {
      servers = platform_->select_servers_region(
          req.client, config_.servers_per_request, rng);
    }
    double when = req.utc_time_hours;
    for (std::uint32_t server : servers) {
      NdtRecord rec = run_single(req.client, server, when, next_id++, rng);
      out.tests.push_back(rec);

      // Server-side Paris traceroute toward the client: skipped when the
      // single-threaded daemon is busy, when it traced this client recently
      // (cache), or when the collection plainly fails (Section 4.1).
      double tr_start = when + config_.ndt_duration_s / 3600.0;
      double& busy = tracer_busy_until[server];
      std::uint64_t cache_key =
          (static_cast<std::uint64_t>(server) << 32) | req.client;
      auto cached = last_traced.find(cache_key);
      if (cached != last_traced.end() &&
          tr_start - cached->second <
              config_.traceroute_cache_minutes / 60.0) {
        ++out.traceroutes_skipped_cached;
      } else if (busy > tr_start) {
        ++out.traceroutes_skipped_busy;
      } else if (rng.chance(config_.traceroute_failure_prob)) {
        ++out.traceroutes_failed;
      } else {
        TracerouteRecord tr = run_traceroute(
            *world_->topo, *fwd_, server, world_->topo->host(req.client).addr,
            tr_start, config_.traceroute, rng);
        out.traceroutes.push_back(std::move(tr));
        double dur_s = rng.uniform(config_.traceroute_min_s,
                                   config_.traceroute_max_s);
        busy = tr_start + dur_s / 3600.0;
        last_traced[cache_key] = tr_start;
      }
      when += config_.ndt_duration_s / 3600.0;
    }
  }
  return out;
}

}  // namespace netcong::measure
