#include "core/diurnal.h"

#include <cmath>

#include "sim/diurnal.h"

namespace netcong::core {

std::map<GroupKey, DiurnalGroup> build_diurnal_groups(
    const std::vector<measure::NdtRecord>& tests, const gen::World& world,
    const std::function<std::string(const measure::NdtRecord&)>& source_of,
    const std::function<std::string(const measure::NdtRecord&)>& isp_of) {
  std::map<GroupKey, DiurnalGroup> groups;
  for (const auto& t : tests) {
    if (t.download_mbps <= 0.0) continue;
    std::string source = source_of(t);
    std::string isp = isp_of(t);
    if (source.empty() || isp.empty()) continue;
    GroupKey key{source, isp};
    DiurnalGroup& g = groups[key];
    g.source = source;
    g.isp = isp;
    int offset =
        world.topo->city(world.topo->host(t.client).city).utc_offset_hours;
    double local =
        sim::local_hour(std::fmod(t.utc_time_hours, 24.0), offset);
    g.throughput.add(local, t.download_mbps);
    g.rtt.add(local, t.flow_rtt_ms);
    g.retrans.add(local, t.retrans_rate);
    g.tests++;
  }
  return groups;
}

std::vector<CongestionCall> infer_congestion(
    const std::map<GroupKey, DiurnalGroup>& groups, double drop_threshold,
    std::size_t min_samples) {
  std::vector<CongestionCall> out;
  for (const auto& [key, g] : groups) {
    CongestionCall call;
    call.key = key;
    call.tests = g.tests;
    call.comparison = stats::compare_peak_offpeak(g.throughput);
    call.congested = call.comparison.peak_count >= min_samples &&
                     call.comparison.offpeak_count >= min_samples &&
                     !std::isnan(call.comparison.relative_drop) &&
                     call.comparison.relative_drop >= drop_threshold;
    out.push_back(std::move(call));
  }
  return out;
}

bool truth_pair_congested(const gen::World& world, topo::Asn source_asn,
                          const std::string& isp_name) {
  auto it = world.isp_asns.find(isp_name);
  if (it == world.isp_asns.end()) return false;
  const topo::Topology& topo = *world.topo;
  for (topo::Asn isp_asn : it->second) {
    for (topo::Asn src_sib : topo.siblings_of(source_asn)) {
      for (topo::LinkId l : topo.interdomain_links(src_sib, isp_asn)) {
        if (world.traffic->congested_at_peak(l)) return true;
      }
    }
  }
  return false;
}

}  // namespace netcong::core
