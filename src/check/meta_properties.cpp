#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/fixtures.h"
#include "check/properties.h"
#include "core/threshold.h"
#include "core/tomography.h"
#include "infer/alias.h"
#include "infer/bdrmap.h"
#include "infer/datasets.h"
#include "infer/mapit.h"
#include "measure/fingerprint.h"
#include "measure/matching.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/faults.h"
#include "util/strings.h"

// Metamorphic inference invariants: transformations of the input that must
// leave the output unchanged (corpus shuffles, IP relabelings, no-op fault
// and instrumentation toggles) or change it in a predictable way (corpus
// duplication doubles evidence, adding vantage points only grows the
// discovered border set). These catch the class of bug where an inference
// is "plausible per run" but secretly depends on input order, raw address
// values, or which orthogonal features happen to be switched on.

namespace netcong::check {
namespace {

using gen::GeneratorConfig;
using util::format;

// ---- MAP-IT helpers ----

struct CrossingKey {
  std::uint32_t near = 0, far = 0;
  topo::Asn near_as = 0, far_as = 0;
  int observations = 0;

  bool operator==(const CrossingKey& o) const {
    return near == o.near && far == o.far && near_as == o.near_as &&
           far_as == o.far_as && observations == o.observations;
  }
  bool operator!=(const CrossingKey& o) const { return !(*this == o); }
  bool operator<(const CrossingKey& o) const {
    if (near != o.near) return near < o.near;
    if (far != o.far) return far < o.far;
    return observations < o.observations;
  }
};

std::vector<CrossingKey> crossing_keys(const infer::MapItResult& r) {
  std::vector<CrossingKey> keys;
  keys.reserve(r.crossings.size());
  for (const auto& c : r.crossings) {
    keys.push_back({c.near_addr.value, c.far_addr.value, c.near_as, c.far_as,
                    c.observations});
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::string compare_mapit(const infer::MapItResult& a,
                          const infer::MapItResult& b, const char* what) {
  if (a.operating_as != b.operating_as) {
    return format("%s: operating-AS assignment differs (%zu vs %zu entries)",
                  what, a.operating_as.size(), b.operating_as.size());
  }
  if (crossing_keys(a) != crossing_keys(b)) {
    return format("%s: border-crossing sets differ (%zu vs %zu crossings)",
                  what, a.crossings.size(), b.crossings.size());
  }
  return "";
}

std::string check_mapit_corpus_shuffle(const GeneratorConfig& cfg) {
  Stack s(cfg);
  auto corpus = vp_corpus(s, 0, cfg.seed ^ 0xa4c);
  if (corpus.empty()) return "";
  infer::Ip2As ip2as(*s.world.topo);
  infer::OrgMap orgs(*s.world.topo);

  auto base = infer::run_mapit(corpus, ip2as, orgs);
  if (!base.coverage.accounted()) {
    return "coverage accounting broken: total != used + unusable";
  }
  auto shuffled = corpus;
  util::Rng shuffler(cfg.seed ^ 0x0f17e5ull);
  shuffler.shuffle(shuffled);
  auto again = infer::run_mapit(shuffled, ip2as, orgs);
  return compare_mapit(base, again, "corpus shuffle");
}

// XOR-relabeling of the top bits shared by every prefix: preserves both
// longest-prefix-match structure (the mask never touches bits below any
// prefix boundary) and /31-/30 point-to-point mates (low bits untouched),
// so MAP-IT's output must be the same map under the relabeling.
std::string check_mapit_relabel(const GeneratorConfig& cfg) {
  Stack s(cfg);
  const topo::Topology& t = *s.world.topo;
  auto corpus = vp_corpus(s, 0, cfg.seed ^ 0x3e1abe1ull);
  if (corpus.empty()) return "";

  std::uint8_t min_len = 32;
  for (const auto& [prefix, origin] : t.announced_prefixes()) {
    (void)origin;
    min_len = std::min(min_len, prefix.len);
  }
  for (const auto& prefix : t.ixp_prefixes()) {
    min_len = std::min(min_len, prefix.len);
  }
  if (min_len == 0 || min_len == 32) return "";
  std::uint32_t bits = std::min<std::uint32_t>(min_len, 16);
  util::Rng rng(cfg.seed ^ 0xd00dull);
  std::uint32_t mask = static_cast<std::uint32_t>(
                           rng.uniform_int(1, (1 << bits) - 1))
                       << (32 - bits);
  auto relabel = [mask](topo::IpAddr a) {
    return topo::IpAddr(a.value ^ mask);
  };

  std::vector<std::pair<topo::Prefix, topo::Asn>> announced;
  for (const auto& [prefix, origin] : t.announced_prefixes()) {
    announced.emplace_back(topo::Prefix(relabel(prefix.network), prefix.len),
                           origin);
  }
  std::vector<topo::Prefix> ixp;
  for (const auto& prefix : t.ixp_prefixes()) {
    ixp.emplace_back(relabel(prefix.network), prefix.len);
  }
  infer::Ip2As ip2as(t);
  infer::Ip2As ip2as_relabeled(announced, ixp);
  infer::OrgMap orgs(t);

  auto relabeled = corpus;
  for (auto& trace : relabeled) {
    trace.dst = relabel(trace.dst);
    for (auto& hop : trace.hops) {
      if (hop.responded) hop.addr = relabel(hop.addr);
    }
  }

  auto base = infer::run_mapit(corpus, ip2as, orgs);
  auto mapped = infer::run_mapit(relabeled, ip2as_relabeled, orgs);

  if (base.operating_as.size() != mapped.operating_as.size()) {
    return format("relabeling changed the assigned-interface count "
                  "(%zu vs %zu)",
                  base.operating_as.size(), mapped.operating_as.size());
  }
  for (const auto& [addr, asn] : base.operating_as) {
    topo::Asn got = mapped.op(relabel(topo::IpAddr(addr)));
    if (got != asn) {
      return format("interface %s: operating AS %u became %u under "
                    "relabeling",
                    topo::IpAddr(addr).to_string().c_str(), asn, got);
    }
  }
  auto mapped_back = crossing_keys(mapped);
  for (auto& key : mapped_back) {
    key.near ^= mask;
    key.far ^= mask;
  }
  std::sort(mapped_back.begin(), mapped_back.end());
  if (crossing_keys(base) != mapped_back) {
    return "relabeling changed the border-crossing set";
  }
  return "";
}

std::string check_mapit_duplication(const GeneratorConfig& cfg) {
  Stack s(cfg);
  auto corpus = vp_corpus(s, 0, cfg.seed ^ 0xd0b1eull);
  if (corpus.empty()) return "";
  infer::Ip2As ip2as(*s.world.topo);
  infer::OrgMap orgs(*s.world.topo);

  auto base = infer::run_mapit(corpus, ip2as, orgs);
  auto doubled_corpus = corpus;
  doubled_corpus.insert(doubled_corpus.end(), corpus.begin(), corpus.end());
  auto doubled = infer::run_mapit(doubled_corpus, ip2as, orgs);

  if (base.operating_as != doubled.operating_as) {
    return "duplicating the corpus changed the operating-AS assignment";
  }
  auto keys_a = crossing_keys(base);
  auto keys_b = crossing_keys(doubled);
  if (keys_a.size() != keys_b.size()) {
    return format("duplicating the corpus changed the crossing count "
                  "(%zu vs %zu)",
                  keys_a.size(), keys_b.size());
  }
  for (std::size_t i = 0; i < keys_a.size(); ++i) {
    CrossingKey expect = keys_a[i];
    expect.observations *= 2;
    if (expect != keys_b[i]) {
      return format("crossing %s->%s: observations not doubled",
                    topo::IpAddr(keys_a[i].near).to_string().c_str(),
                    topo::IpAddr(keys_a[i].far).to_string().c_str());
    }
  }
  if (doubled.coverage.traces_total != 2 * base.coverage.traces_total ||
      doubled.coverage.traces_used != 2 * base.coverage.traces_used ||
      doubled.coverage.hops_total != 2 * base.coverage.hops_total) {
    return "duplicating the corpus did not double the coverage counters";
  }
  return "";
}

std::string check_bdrmap_vp_monotone(const GeneratorConfig& cfg) {
  Stack s(cfg);
  const topo::Topology& t = *s.world.topo;
  if (s.world.ark_vps.empty()) return "";
  infer::Ip2As ip2as(t);
  infer::OrgMap orgs(t);
  infer::AliasResolver aliases(t, 0.9, cfg.seed);

  std::unordered_set<topo::Asn> discovered;
  std::size_t previous = 0;
  std::size_t nvps = std::min<std::size_t>(3, s.world.ark_vps.size());
  for (std::size_t i = 0; i < nvps; ++i) {
    std::uint32_t vp = s.world.ark_vps[i];
    auto corpus = vp_corpus(s, i, cfg.seed ^ (0xb0dull + i));
    topo::Asn vp_as = t.host(vp).asn;
    auto result = infer::run_bdrmap(corpus, vp_as, ip2as, orgs,
                                    t.relationships(), aliases);
    if (!result.coverage().accounted()) {
      return format("VP %zu: corpus coverage not accounted", i);
    }
    std::unordered_set<topo::Asn> seen;
    for (const auto& border : result.borders) {
      if (!seen.insert(border.neighbor).second) {
        return format("VP %zu: neighbor AS%u listed twice", i,
                      border.neighbor);
      }
      if (border.neighbor == vp_as) {
        return format("VP %zu: the VP's own AS%u listed as a neighbor", i,
                      vp_as);
      }
      if (border.far_ifaces.empty()) {
        return format("VP %zu: neighbor AS%u has no far-side interfaces", i,
                      border.neighbor);
      }
      discovered.insert(border.neighbor);
    }
    if (discovered.size() < previous) {
      return format("adding VP %zu shrank the discovered border set", i);
    }
    previous = discovered.size();
  }
  return "";
}

// ---- matching ----

std::string check_matching_shuffle(const GeneratorConfig& cfg) {
  Stack s(cfg);
  auto schedule = dense_schedule(s.world, 2);
  measure::CampaignConfig ccfg;
  measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab, ccfg);
  util::Rng rng(cfg.seed);
  auto result = campaign.run(schedule, rng);

  measure::MatchOptions opts;
  opts.allow_before = (cfg.seed & 1) != 0;
  measure::MatchStats stats_a;
  auto matches = measure::match_tests(result.tests, result.traceroutes,
                                      *s.world.topo, opts, &stats_a);
  if (!stats_a.accounted()) return "match stats not accounted";
  if (!(stats_a.fraction() >= 0.0 && stats_a.fraction() <= 1.0)) {
    return format("matching fraction %.4f outside [0, 1]",
                  stats_a.fraction());
  }

  // Key the outcomes by test id; pointers differ across input orders.
  struct Outcome {
    measure::MatchedTest::Outcome outcome;
    std::uint32_t dst = 0;
    double time = 0.0;
  };
  auto keyed = [](const std::vector<measure::MatchedTest>& ms) {
    std::unordered_map<std::uint64_t, Outcome> out;
    for (const auto& m : ms) {
      Outcome o{m.outcome, 0, 0.0};
      if (m.traceroute != nullptr) {
        o.dst = m.traceroute->dst.value;
        o.time = m.traceroute->utc_time_hours;
      }
      out[m.test->test_id] = o;
    }
    return out;
  };
  auto base = keyed(matches);

  auto tests = result.tests;
  auto traceroutes = result.traceroutes;
  util::Rng shuffler(cfg.seed ^ 0x77ull);
  shuffler.shuffle(tests);
  shuffler.shuffle(traceroutes);
  measure::MatchStats stats_b;
  auto again = measure::match_tests(tests, traceroutes, *s.world.topo, opts,
                                    &stats_b);
  auto shuffled = keyed(again);

  if (base.size() != shuffled.size()) {
    return "shuffling inputs changed the matched-test count";
  }
  for (const auto& [id, o] : base) {
    auto it = shuffled.find(id);
    if (it == shuffled.end()) {
      return format("test %llu lost after shuffling",
                    static_cast<unsigned long long>(id));
    }
    if (it->second.outcome != o.outcome || it->second.dst != o.dst ||
        it->second.time != o.time) {
      return format("test %llu matched differently after shuffling",
                    static_cast<unsigned long long>(id));
    }
  }
  if (stats_a.matched != stats_b.matched ||
      stats_a.eligible != stats_b.eligible ||
      stats_a.total_tests != stats_b.total_tests) {
    return "match stats differ across input orders";
  }
  return "";
}

// ---- no-op toggles ----

std::string check_campaign_noop_toggles(const GeneratorConfig& cfg) {
  Stack s(cfg);
  auto schedule = dense_schedule(s.world, 2);
  measure::CampaignConfig ccfg;
  measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab, ccfg);

  auto run_fp = [&] {
    util::Rng rng(cfg.seed);
    return measure::fingerprint(campaign.run(schedule, rng));
  };
  std::uint64_t clean = run_fp();

  // A zero-rate (but enabled) injector must not perturb any draw stream.
  sim::FaultConfig zero;
  zero.enabled = true;
  sim::FaultInjector faults(zero, cfg.seed ^ 0xfa17ull);
  campaign.set_faults(&faults);
  std::uint64_t zeroed = run_fp();
  campaign.set_faults(nullptr);
  if (zeroed != clean) {
    return "enabling a zero-rate fault injector changed the campaign output";
  }

  // Turning instrumentation on records metrics/spans but must not change
  // a single output bit.
  bool metrics_were = obs::MetricsRegistry::global().enabled();
  bool traces_were = obs::TraceRecorder::global().enabled();
  obs::MetricsRegistry::global().set_enabled(true);
  obs::TraceRecorder::global().set_enabled(true);
  std::uint64_t instrumented = run_fp();
  obs::MetricsRegistry::global().set_enabled(metrics_were);
  obs::TraceRecorder::global().set_enabled(traces_were);
  if (instrumented != clean) {
    return "enabling observability instrumentation changed the campaign "
           "output";
  }
  return "";
}

// ---- tomography (synthetic observations; cheap, high iteration count) ----

util::pbt::Domain<core::PathObservation> observation_domain() {
  util::pbt::Domain<core::PathObservation> d;
  d.generate = [](util::Rng& rng) {
    core::PathObservation obs;
    int nlinks = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < nlinks; ++i) {
      obs.links.push_back(topo::LinkId(
          static_cast<std::uint32_t>(rng.uniform_int(1, 10))));
    }
    obs.bad = rng.chance(0.3);
    return obs;
  };
  d.shrink = [](const core::PathObservation& obs) {
    std::vector<core::PathObservation> out;
    if (obs.bad) {
      core::PathObservation good = obs;
      good.bad = false;
      out.push_back(good);
    }
    for (std::size_t i = 0; obs.links.size() > 1 && i < obs.links.size();
         ++i) {
      core::PathObservation smaller = obs;
      smaller.links.erase(smaller.links.begin() +
                          static_cast<std::ptrdiff_t>(i));
      out.push_back(smaller);
    }
    return out;
  };
  d.describe = [](const core::PathObservation& obs) {
    std::string out = obs.bad ? "bad{" : "good{";
    for (std::size_t i = 0; i < obs.links.size(); ++i) {
      if (i) out += ",";
      out += format("%u", obs.links[i].value);
    }
    return out + "}";
  };
  return d;
}

std::string check_tomography(const std::vector<core::PathObservation>& obs) {
  auto greedy = core::greedy_binary_tomography(obs);

  // Order invariance: reversing the observations is a nontrivial
  // permutation and must not change the result.
  std::vector<core::PathObservation> reversed(obs.rbegin(), obs.rend());
  auto reversed_result = core::greedy_binary_tomography(reversed);
  if (greedy.bad_links != reversed_result.bad_links ||
      greedy.consistent != reversed_result.consistent ||
      greedy.uncovered_bad_paths != reversed_result.uncovered_bad_paths) {
    return "greedy tomography depends on observation order";
  }

  // No inferred bad link may sit on a good path (exoneration).
  std::unordered_set<topo::LinkId> inferred(greedy.bad_links.begin(),
                                            greedy.bad_links.end());
  for (const auto& o : obs) {
    if (o.bad) continue;
    for (topo::LinkId l : o.links) {
      if (inferred.count(l) > 0) {
        return format("inferred bad link %u lies on a good path", l.value);
      }
    }
  }
  // Covering: every bad path holds an inferred link, or is counted
  // uncovered and flips the consistency flag.
  std::size_t uncovered = 0;
  for (const auto& o : obs) {
    if (!o.bad) continue;
    bool covered = false;
    for (topo::LinkId l : o.links) covered = covered || inferred.count(l) > 0;
    if (!covered) ++uncovered;
  }
  if (uncovered != greedy.uncovered_bad_paths) {
    return format("uncovered bad paths misreported: %zu actual vs %zu "
                  "reported",
                  uncovered, greedy.uncovered_bad_paths);
  }
  if (greedy.consistent != (uncovered == 0)) {
    return "consistency flag disagrees with uncovered-path count";
  }

  // The exact solver never needs more links than greedy, and must satisfy
  // the same soundness conditions.
  auto exact = core::exact_binary_tomography(obs);
  if (exact.bad_links.size() > greedy.bad_links.size()) {
    return format("exact cover (%zu links) larger than greedy (%zu)",
                  exact.bad_links.size(), greedy.bad_links.size());
  }
  if (exact.consistent != greedy.consistent) {
    return "exact and greedy disagree on consistency";
  }
  return "";
}

// ---- threshold sweep (synthetic drops; cheap) ----

util::pbt::Domain<core::LabeledDrop> drop_domain() {
  util::pbt::Domain<core::LabeledDrop> d;
  d.generate = [](util::Rng& rng) {
    core::LabeledDrop drop;
    drop.relative_drop = rng.uniform(-0.2, 0.9);
    drop.truth_congested = rng.chance(0.4);
    drop.samples = static_cast<std::size_t>(rng.uniform_int(1, 50));
    return drop;
  };
  d.describe = [](const core::LabeledDrop& drop) {
    return format("%s%.3f", drop.truth_congested ? "+" : "-",
                  drop.relative_drop);
  };
  return d;
}

std::string check_threshold_roc(const std::vector<core::LabeledDrop>& drops) {
  auto roc = core::roc_sweep(drops, 20);
  if (roc.empty()) return "roc_sweep returned no points";

  std::vector<core::LabeledDrop> reversed(drops.rbegin(), drops.rend());
  auto roc_rev = core::roc_sweep(reversed, 20);
  if (roc.size() != roc_rev.size()) return "ROC size depends on input order";
  for (std::size_t i = 0; i < roc.size(); ++i) {
    if (roc[i].threshold != roc_rev[i].threshold ||
        roc[i].tpr != roc_rev[i].tpr || roc[i].fpr != roc_rev[i].fpr) {
      return "ROC points depend on input order";
    }
  }

  for (std::size_t i = 0; i < roc.size(); ++i) {
    const auto& pt = roc[i];
    if (pt.tpr < 0.0 || pt.tpr > 1.0 || pt.fpr < 0.0 || pt.fpr > 1.0) {
      return format("ROC point %zu outside the unit square (tpr=%.3f "
                    "fpr=%.3f)",
                    i, pt.tpr, pt.fpr);
    }
    if (i > 0) {
      if (pt.threshold <= roc[i - 1].threshold) {
        return "ROC thresholds not strictly increasing";
      }
      // Raising the threshold can only shed positive predictions.
      if (pt.tpr > roc[i - 1].tpr + 1e-12 ||
          pt.fpr > roc[i - 1].fpr + 1e-12 ||
          pt.predicted_positive > roc[i - 1].predicted_positive) {
        return format("ROC not monotone at threshold %.3f", pt.threshold);
      }
    }
  }

  auto best = core::best_threshold(roc);
  for (const auto& pt : roc) {
    if (pt.tpr - pt.fpr > best.tpr - best.fpr + 1e-12) {
      return format("best_threshold (J=%.4f) beaten by threshold %.3f "
                    "(J=%.4f)",
                    best.tpr - best.fpr, pt.threshold, pt.tpr - pt.fpr);
    }
  }

  auto dist = core::drop_distributions(drops);
  if (dist.congested.size() + dist.uncongested.size() != drops.size()) {
    return "drop_distributions lost samples";
  }
  if (!dist.congested.empty()) {
    auto [lo, hi] = std::minmax_element(dist.congested.begin(),
                                        dist.congested.end());
    if (dist.congested_median < *lo || dist.congested_median > *hi) {
      return "congested median outside its own distribution";
    }
  }
  if (!dist.uncongested.empty()) {
    auto [lo, hi] = std::minmax_element(dist.uncongested.begin(),
                                        dist.uncongested.end());
    if (dist.uncongested_median < *lo || dist.uncongested_median > *hi) {
      return "uncongested median outside its own distribution";
    }
  }
  return "";
}

Property world_property(const char* name, const char* summary, int iters,
                        std::string (*fn)(const GeneratorConfig&)) {
  Property p;
  p.name = name;
  p.family = "meta";
  p.summary = summary;
  p.default_iterations = iters;
  std::string pname = p.name;
  p.run = [pname, fn](util::pbt::Config cfg) {
    return util::pbt::check<GeneratorConfig>(pname, config_domain(), fn, cfg);
  };
  return p;
}

}  // namespace

void register_meta_properties(std::vector<Property>& out) {
  out.push_back(world_property(
      "meta.mapit_corpus_shuffle",
      "MAP-IT assignment and crossings invariant under corpus shuffles", 6,
      check_mapit_corpus_shuffle));
  out.push_back(world_property(
      "meta.mapit_relabel",
      "MAP-IT equivariant under top-bit IP relabeling of the whole view", 6,
      check_mapit_relabel));
  out.push_back(world_property(
      "meta.mapit_duplication",
      "duplicating the corpus doubles evidence, not conclusions", 6,
      check_mapit_duplication));
  out.push_back(world_property(
      "meta.bdrmap_vp_monotone",
      "border sets grow monotonically as vantage points are added", 5,
      check_bdrmap_vp_monotone));
  out.push_back(world_property(
      "meta.matching_shuffle",
      "NDT-traceroute matching invariant under input shuffles", 5,
      check_matching_shuffle));
  out.push_back(world_property(
      "meta.campaign_noop_toggles",
      "zero-rate faults and observability toggles leave output bit-identical",
      4, check_campaign_noop_toggles));

  {
    Property p;
    p.name = "meta.tomography_invariants";
    p.family = "meta";
    p.summary =
        "binary tomography: order-invariant, sound, exact <= greedy";
    p.default_iterations = 150;
    p.run = [](util::pbt::Config cfg) {
      return util::pbt::check<std::vector<core::PathObservation>>(
          "meta.tomography_invariants",
          util::pbt::vector_of(observation_domain(), 1, 30),
          check_tomography, cfg);
    };
    out.push_back(p);
  }
  {
    Property p;
    p.name = "meta.threshold_roc_invariants";
    p.family = "meta";
    p.summary =
        "ROC sweep: order-invariant, monotone, best threshold maximizes J";
    p.default_iterations = 150;
    p.run = [](util::pbt::Config cfg) {
      return util::pbt::check<std::vector<core::LabeledDrop>>(
          "meta.threshold_roc_invariants",
          util::pbt::vector_of(drop_domain(), 1, 40), check_threshold_roc,
          cfg);
    };
    out.push_back(p);
  }
}

}  // namespace netcong::check
