// The always-on ingest service: lifecycle idempotence, backpressure and
// drop accounting under a deliberately slow consumer, and snapshot
// determinism across worker-thread counts — the same guarantees the
// ingest.* property family checks on random worlds, pinned here on the
// cached tiny world so failures localize and tsan gets a dense schedule
// of cross-thread submits/snapshots to race-check.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "gen/workload.h"
#include "helpers.h"
#include "infer/alias.h"
#include "infer/datasets.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "serve/event.h"
#include "serve/net.h"
#include "serve/queue.h"
#include "serve/service.h"
#include "sim/faults.h"
#include "sim/throughput.h"

namespace netcong::serve {
namespace {

struct Stack {
  explicit Stack(const gen::World& w)
      : world(w),
        bgp(*w.topo),
        fwd(*w.topo, bgp),
        model(*w.topo, *w.traffic),
        mlab("mlab", *w.topo, w.mlab_servers),
        ip2as(*w.topo),
        orgs(*w.topo),
        aliases(*w.topo, 0.9, 7) {}
  const gen::World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  measure::Platform mlab;
  infer::Ip2As ip2as;
  infer::OrgMap orgs;
  infer::AliasResolver aliases;
};

Stack& stack() {
  static Stack s(test::tiny_world());
  return s;
}

// Process-cached event log: a dense multi-round schedule over every client,
// flattened into arrival order.
const std::vector<IngestEvent>& event_log() {
  static const std::vector<IngestEvent> log = [] {
    Stack& s = stack();
    std::vector<gen::TestRequest> schedule;
    for (int round = 0; round < 4; ++round) {
      for (std::size_t i = 0; i < s.world.clients.size(); ++i) {
        schedule.push_back(
            {s.world.clients[i],
             10.0 + round * 0.05 + static_cast<double>(i) * 0.003});
      }
    }
    measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab,
                                  measure::CampaignConfig{});
    util::Rng rng(20150501);
    return event_log_from(campaign.run(schedule, rng));
  }();
  return log;
}

ServeConfig base_config(std::size_t shards) {
  ServeConfig cfg;
  cfg.shards = shards;
  cfg.queue_capacity = 32;
  cfg.policy = OverflowPolicy::kBlock;
  if (!stack().world.ark_vps.empty()) {
    cfg.vp_as = stack().world.topo->host(stack().world.ark_vps[0]).asn;
  }
  return cfg;
}

TEST(BoundedQueueTest, BlockPolicyConservesItems) {
  BoundedQueue<int> q(2, OverflowPolicy::kBlock);
  std::thread consumer([&] {
    while (q.pop()) {
    }
  });
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(q.push(i));
  q.close();
  consumer.join();
  QueueCounters c = q.counters();
  EXPECT_EQ(c.pushed, 100u);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(c.popped, 100u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueueTest, DropPolicyCountsOverflow) {
  BoundedQueue<int> q(2, OverflowPolicy::kDrop);
  // No consumer: the third push must drop.
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_FALSE(q.push(3));
  QueueCounters c = q.counters();
  EXPECT_EQ(c.pushed, 2u);
  EXPECT_EQ(c.dropped, 1u);
  EXPECT_EQ(c.pushed, c.popped + q.depth());  // accepted items conserved
  q.close();
  EXPECT_FALSE(q.push(4));
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(8, OverflowPolicy::kBlock);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  q.close();  // idempotent
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(ServeLifecycleTest, StartFlushStopIdempotent) {
  Stack& s = stack();
  IngestService svc(s.ip2as, s.orgs, base_config(2));
  svc.start();
  svc.start();  // second start is a no-op
  EXPECT_TRUE(svc.running());
  EXPECT_EQ(svc.shards(), 2u);
  svc.flush();  // flush of an empty service returns immediately
  ServiceSnapshot empty = svc.snapshot();
  EXPECT_EQ(empty.events_consumed, 0u);
  EXPECT_EQ(empty.traces, 0u);
  EXPECT_EQ(empty.ndt_tests, 0u);
  svc.stop();
  svc.stop();  // idempotent
  EXPECT_FALSE(svc.running());
  EXPECT_FALSE(svc.submit(event_log().front()));
  ServiceCounters c = svc.counters();
  EXPECT_EQ(c.submitted, 0u);
}

TEST(ServeLifecycleTest, SubmitBeforeStartIsRejected) {
  Stack& s = stack();
  IngestService svc(s.ip2as, s.orgs, base_config(1));
  EXPECT_FALSE(svc.submit(event_log().front()));
  svc.start();
  EXPECT_TRUE(svc.submit(event_log().front()));
  svc.stop();
}

TEST(ServeBackpressureTest, BlockPolicySlowConsumerLosesNothing) {
  Stack& s = stack();
  ServeConfig cfg = base_config(2);
  cfg.queue_capacity = 2;
  cfg.consume_delay_us = 50;  // consumer far slower than the producers
  IngestService svc(s.ip2as, s.orgs, cfg);
  svc.start();

  const auto& log = event_log();
  std::size_t n = std::min<std::size_t>(log.size(), 400);
  // Two producers racing into tiny queues: every submit must block until
  // space opens, never fail.
  std::thread other([&] {
    for (std::size_t i = n / 2; i < n; ++i) {
      EXPECT_TRUE(svc.submit(log[i]));
    }
  });
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_TRUE(svc.submit(log[i]));
  }
  other.join();
  svc.flush();
  ServiceCounters c = svc.counters();
  EXPECT_EQ(c.submitted, n);
  EXPECT_EQ(c.enqueued, n);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(c.consumed, n);
  svc.stop();
}

TEST(ServeBackpressureTest, DropPolicyAccountsEveryEvent) {
  Stack& s = stack();
  ServeConfig cfg = base_config(2);
  cfg.policy = OverflowPolicy::kDrop;
  cfg.queue_capacity = 2;
  cfg.consume_delay_us = 100;
  IngestService svc(s.ip2as, s.orgs, cfg);
  svc.start();

  const auto& log = event_log();
  std::size_t n = std::min<std::size_t>(log.size(), 400);
  std::uint64_t accepted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (svc.submit(log[i])) ++accepted;
  }
  svc.flush();
  ServiceCounters c = svc.counters();
  EXPECT_EQ(c.submitted, n);
  EXPECT_EQ(c.enqueued, accepted);
  EXPECT_EQ(c.submitted, c.enqueued + c.dropped);
  EXPECT_EQ(c.consumed, c.enqueued);
  EXPECT_GT(c.dropped, 0u);  // tiny queues + slowed consumer must overflow
  ServiceSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.events_consumed, c.enqueued);
  svc.stop();
}

TEST(ServeSnapshotTest, DeterministicAcrossWorkerCounts) {
  Stack& s = stack();
  const auto& log = event_log();
  ASSERT_FALSE(log.empty());

  std::uint64_t baseline = 0;
  const std::size_t shard_counts[] = {1, 2, 0};  // 0 = hardware threads
  for (std::size_t shards : shard_counts) {
    IngestService svc(s.ip2as, s.orgs, base_config(shards));
    svc.set_relationships(&s.world.topo->relationships(), &s.aliases);
    svc.start();
    for (const auto& ev : log) ASSERT_TRUE(svc.submit(ev));
    ServiceSnapshot snap = svc.snapshot();
    EXPECT_EQ(snap.events_consumed, log.size());
    if (shards == 1) {
      baseline = snap.fingerprint;
    } else {
      EXPECT_EQ(snap.fingerprint, baseline) << "shards=" << shards;
    }
    // Mid-stream determinism too: snapshot, ingest more, snapshot again —
    // still equal across shard counts because only the event set matters.
    svc.stop();
  }
  EXPECT_NE(baseline, 0u);
}

TEST(ServeSnapshotTest, SnapshotsAreIncremental) {
  Stack& s = stack();
  const auto& log = event_log();
  std::size_t half = log.size() / 2;

  IngestService svc(s.ip2as, s.orgs, base_config(2));
  svc.start();
  for (std::size_t i = 0; i < half; ++i) ASSERT_TRUE(svc.submit(log[i]));
  ServiceSnapshot first = svc.snapshot();
  EXPECT_EQ(first.events_consumed, half);
  for (std::size_t i = half; i < log.size(); ++i) {
    ASSERT_TRUE(svc.submit(log[i]));
  }
  ServiceSnapshot second = svc.snapshot();
  EXPECT_EQ(second.events_consumed, log.size());
  EXPECT_GE(second.traces, first.traces);
  EXPECT_GE(second.ndt_tests, first.ndt_tests);
  svc.stop();

  // The incremental end state equals a fresh service fed everything.
  IngestService fresh(s.ip2as, s.orgs, base_config(2));
  fresh.start();
  for (const auto& ev : log) ASSERT_TRUE(fresh.submit(ev));
  EXPECT_EQ(fresh.snapshot().fingerprint, second.fingerprint);
  fresh.stop();
}

// Regression for the drop-policy accounting gap: events arriving over the
// socket and dropped by a full kDrop queue must stay inside the conserved
// invariants at every layer — the listener's frame accounting, the
// service's submit accounting, and the campaign-level DataQuality report
// they fold into. Before §12 the socket layer had no ledger, so a dropped
// socket event simply vanished from the books.
TEST(ServeSocketTest, DropPolicyAccountingSpansSocketAndService) {
  Stack& s = stack();
  ServeConfig cfg = base_config(2);
  cfg.policy = OverflowPolicy::kDrop;
  cfg.queue_capacity = 2;
  cfg.consume_delay_us = 200;  // consumer far slower than loopback TCP
  IngestService svc(s.ip2as, s.orgs, cfg);
  svc.start();
  FrameListener listener(svc, NetConfig{});
  ASSERT_TRUE(listener.start(0).ok());

  const auto& log = event_log();
  std::size_t n = std::min<std::size_t>(log.size(), 400);
  FrameClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", listener.port()).ok());
  for (std::size_t i = 0; i < n; ++i) ASSERT_TRUE(client.send(log[i]).ok());
  client.close();

  // Wait until the listener has classified every frame, then quiesce.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (listener.counters().frames_ok < n &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  svc.flush();
  NetCounters net = listener.counters();
  listener.stop();

  // Socket-layer conservation: every good frame's event was either
  // submitted or classified dropped.
  EXPECT_EQ(net.frames_ok, n);
  EXPECT_EQ(net.frames_rejected(), 0u);
  EXPECT_TRUE(net.consistent());
  EXPECT_EQ(net.events_submitted + net.events_dropped, n);
  EXPECT_GT(net.events_dropped, 0u);  // tiny queues + slow consumer

  // Service-layer conservation, and the two ledgers agree edge for edge.
  ServiceCounters c = svc.counters();
  EXPECT_EQ(c.submitted, n);
  EXPECT_EQ(c.submitted, c.enqueued + c.dropped);
  EXPECT_EQ(c.enqueued, net.events_submitted);
  EXPECT_EQ(c.dropped, net.events_dropped);
  EXPECT_EQ(c.consumed, c.enqueued);

  // And the campaign-level report stays consistent once the socket share
  // is folded in.
  sim::DataQuality quality;
  net.fold_into(quality);
  EXPECT_TRUE(quality.consistent());
  EXPECT_EQ(quality.ingest_frames_ok, n);
  EXPECT_EQ(quality.ingest_events_submitted + quality.ingest_events_dropped,
            n);
  svc.stop();
}

// The snapshot diff stream: each snapshot's churn field must equal the
// diff recomputed from the two snapshots by diff_snapshots(), through both
// growth (borders added as evidence accumulates) and decay (borders
// removed when eviction ages their evidence out).
TEST(ServeSnapshotTest, DiffStreamMatchesRecomputedDiff) {
  Stack& s = stack();
  const auto& log = event_log();
  ASSERT_GT(log.size(), 16u);

  ServeConfig cfg = base_config(2);
  // Sized against the cached log (~2.7k events, whose single border's
  // traceroute evidence arrives mid-log): two 1024-event epochs keep the
  // border alive at the second snapshot and age it out by the third, so
  // the diff stream shows both growth and decay churn.
  cfg.epoch_events = 1024;
  cfg.retain_epochs = 2;
  IngestService svc(s.ip2as, s.orgs, cfg);
  svc.set_relationships(&s.world.topo->relationships(), &s.aliases);
  svc.start();

  // First snapshot: tiny prefix, so later snapshots have borders to add.
  for (std::size_t i = 0; i < 4; ++i) ASSERT_TRUE(svc.submit(log[i]));
  ServiceSnapshot snap1 = svc.snapshot();
  EXPECT_FALSE(snap1.diff.changed());  // no previous snapshot to diff
  EXPECT_EQ(snap1.diff.events_delta, 0);

  // Second: the bulk of the log lands, growing the border map.
  std::size_t mid = log.size() / 2;
  for (std::size_t i = 4; i < mid; ++i) ASSERT_TRUE(svc.submit(log[i]));
  ServiceSnapshot snap2 = svc.snapshot();
  SnapshotDiff expect2 = diff_snapshots(snap1, snap2);
  EXPECT_EQ(snap2.diff.borders_added, expect2.borders_added);
  EXPECT_EQ(snap2.diff.borders_removed, expect2.borders_removed);
  EXPECT_EQ(snap2.diff.events_delta, expect2.events_delta);
  EXPECT_EQ(snap2.diff.events_delta,
            static_cast<std::int64_t>(snap2.events_consumed) -
                static_cast<std::int64_t>(snap1.events_consumed));
  EXPECT_FALSE(snap2.diff.borders_added.empty());  // growth churn

  // Third: the rest, with eviction aging the early epochs out.
  for (std::size_t i = mid; i < log.size(); ++i) {
    ASSERT_TRUE(svc.submit(log[i]));
  }
  ServiceSnapshot snap3 = svc.snapshot();
  EXPECT_GT(snap3.events_evicted, 0u);
  SnapshotDiff expect3 = diff_snapshots(snap2, snap3);
  EXPECT_EQ(snap3.diff.borders_added, expect3.borders_added);
  EXPECT_EQ(snap3.diff.borders_removed, expect3.borders_removed);
  EXPECT_EQ(snap3.diff.events_delta, expect3.events_delta);
  EXPECT_FALSE(snap3.diff.borders_removed.empty());  // decay churn
  svc.stop();
}

TEST(ServeEventTest, ClassicAndColumnarLogsIdentical) {
  Stack& s = stack();
  std::vector<gen::TestRequest> schedule;
  for (std::size_t i = 0; i < s.world.clients.size(); ++i) {
    schedule.push_back({s.world.clients[i], 12.0 + 0.004 * i});
  }
  measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab,
                                measure::CampaignConfig{});
  util::Rng rng_a(99), rng_b(99);
  auto classic = event_log_from(campaign.run(schedule, rng_a));
  auto columnar = event_log_from(campaign.run_columnar(schedule, rng_b));
  ASSERT_EQ(classic.size(), columnar.size());
  EXPECT_EQ(fingerprint(classic, classic.size()),
            fingerprint(columnar, columnar.size()));
  // Arrival order: non-decreasing timestamps.
  auto time_of = [](const IngestEvent& ev) {
    return is_ndt(ev) ? std::get<measure::NdtRecord>(ev).utc_time_hours
                      : std::get<measure::TracerouteRecord>(ev).utc_time_hours;
  };
  for (std::size_t i = 1; i < classic.size(); ++i) {
    EXPECT_LE(time_of(classic[i - 1]), time_of(classic[i]));
  }
}

}  // namespace
}  // namespace netcong::serve
