#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace netcong::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string format_compact(double v, int max_decimals) {
  std::string s = format("%.*f", max_decimals, v);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string with_thousands(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace netcong::util
