#include "serve/service.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <utility>

#include "infer/fingerprint.h"
#include "measure/fingerprint.h"

namespace netcong::serve {

namespace {

std::size_t resolve_shards(std::size_t requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// flush() wakeup channel. A plain global (not per-service) keeps Shard a
// movable-free aggregate; spurious wakeups from another service instance
// just re-check that instance's predicate.
std::mutex g_flush_mu;
std::condition_variable g_flush_cv;

}  // namespace

const char* overflow_policy_name(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock:
      return "block";
    case OverflowPolicy::kDrop:
      return "drop";
  }
  return "unknown";
}

IngestService::IngestService(const infer::Ip2As& ip2as,
                             const infer::OrgMap& orgs, ServeConfig config)
    : ip2as_(ip2as), orgs_(orgs), config_(std::move(config)) {
  auto& reg = obs::MetricsRegistry::global();
  enqueued_ctr_ = reg.counter("serve.enqueued");
  consumed_ctr_ = reg.counter("serve.consumed");
  dropped_ctr_ = reg.counter("serve.dropped");
  snapshots_ctr_ = reg.counter("serve.snapshots");
  snapshot_ms_hist_ =
      reg.histogram("serve.snapshot_ms", obs::exp_bounds(0.1, 10000.0, 16));

  std::size_t n = resolve_shards(config_.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(config_.queue_capacity, config_.policy));
    shards_.back()->depth_gauge =
        reg.gauge("serve.queue_depth." + std::to_string(i));
  }
}

IngestService::~IngestService() { stop(); }

void IngestService::set_relationships(const topo::RelationshipTable* rels,
                                      const infer::AliasResolver* aliases) {
  rels_ = rels;
  aliases_ = aliases;
}

void IngestService::start() {
  std::unique_lock<std::shared_mutex> gate(gate_);
  if (running_) return;
  running_ = true;
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
  }
}

bool IngestService::submit(IngestEvent event) {
  std::shared_lock<std::shared_mutex> gate(gate_);
  if (!running_) return false;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[seq % shards_.size()];
  if (shard.queue.push(std::move(event))) {
    enqueued_ctr_.inc();
    return true;
  }
  dropped_ctr_.inc();
  return false;
}

void IngestService::flush() {
  // Every event enqueued before this call must be consumed before we
  // return. Later enqueues may or may not be covered — callers needing a
  // stable cut take the snapshot() gate.
  std::uint64_t target = 0;
  for (const auto& shard : shards_) target += shard->queue.counters().pushed;
  std::unique_lock<std::mutex> lock(g_flush_mu);
  g_flush_cv.wait(lock, [this, target] {
    return consumed_.load(std::memory_order_acquire) >= target;
  });
}

ServiceSnapshot IngestService::snapshot() {
  auto t0 = std::chrono::steady_clock::now();
  // Exclusive gate: no producer can enqueue mid-snapshot, so the drained
  // evidence corresponds to an exact prefix of the submitted stream.
  std::unique_lock<std::shared_mutex> gate(gate_);
  flush();

  ServiceSnapshot snap;
  infer::MapItEvidence merged;
  // Merge in shard order for a fixed traversal; the result is order-
  // independent anyway (commutative sums into canonical-layout tables).
  for (const auto& shard : shards_) {
    merged.merge(shard->mapit);
    snap.ndt.merge(shard->ndt);
  }
  snap.events_consumed = consumed_.load(std::memory_order_acquire);
  snap.traces = merged.traces();
  snap.ndt_tests = snap.ndt.tests();
  snap.mapit = merged.infer(ip2as_, orgs_, config_.mapit);
  if (rels_ != nullptr && aliases_ != nullptr) {
    snap.borders = infer::borders_from_mapit(snap.mapit, config_.vp_as, orgs_,
                                             *rels_, *aliases_);
  }
  snap.fingerprint = snapshot_fingerprint(snap);

  auto t1 = std::chrono::steady_clock::now();
  snap.snapshot_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  snapshots_ctr_.inc();
  snapshot_ms_hist_.observe(snap.snapshot_ms);
  return snap;
}

void IngestService::stop() {
  {
    std::unique_lock<std::shared_mutex> gate(gate_);
    if (!running_) return;
    running_ = false;
  }
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
    shard->depth_gauge.set(0.0);
  }
}

ServiceCounters IngestService::counters() const {
  ServiceCounters c;
  c.submitted = submitted_.load(std::memory_order_relaxed);
  c.consumed = consumed_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    QueueCounters q = shard->queue.counters();
    c.enqueued += q.pushed;
    c.dropped += q.dropped;
  }
  return c;
}

void IngestService::worker_loop(Shard& shard) {
  std::uint64_t local = 0;
  while (auto ev = shard.queue.pop()) {
    if (config_.consume_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.consume_delay_us));
    }
    if (const auto* test = std::get_if<measure::NdtRecord>(&*ev)) {
      shard.ndt.add(*test);
      ++shard.ndt_tests;
    } else {
      shard.mapit.add(std::get<measure::TracerouteRecord>(*ev), ip2as_);
    }
    consumed_ctr_.inc();
    // Release pairs with flush()'s acquire: once a flusher observes the
    // count, the shard-local store writes above are visible to it.
    consumed_.fetch_add(1, std::memory_order_release);
    // The empty critical section orders this increment against a flusher's
    // predicate check, closing the lost-wakeup window (the flusher may be
    // between "predicate false" and "blocked" — notify must not race past).
    { std::lock_guard<std::mutex> lk(g_flush_mu); }
    g_flush_cv.notify_all();
    if ((++local & 63) == 0) {
      shard.depth_gauge.set(static_cast<double>(shard.queue.depth()));
    }
  }
  shard.depth_gauge.set(static_cast<double>(shard.queue.depth()));
}

std::uint64_t snapshot_fingerprint(const ServiceSnapshot& snap) {
  measure::Fingerprint fp;
  fp.mix(snap.events_consumed);
  fp.mix(snap.traces);
  fp.mix(snap.ndt_tests);
  snap.ndt.mix_into(fp);
  fp.mix(infer::fingerprint(snap.mapit));
  fp.mix(static_cast<std::uint64_t>(snap.borders.has_value()));
  if (snap.borders) fp.mix(infer::fingerprint(*snap.borders));
  return fp.value();
}

}  // namespace netcong::serve
