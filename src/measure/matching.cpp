#include "measure/matching.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace netcong::measure {

std::vector<MatchedTest> match_tests(
    const std::vector<NdtRecord>& tests,
    const std::vector<TracerouteRecord>& traceroutes,
    const topo::Topology& topo, const MatchOptions& options,
    MatchStats* stats) {
  // Index traceroutes by destination address, sorted by time.
  std::unordered_map<std::uint32_t, std::vector<const TracerouteRecord*>>
      by_dst;
  for (const auto& tr : traceroutes) {
    by_dst[tr.dst.value].push_back(&tr);
  }
  for (auto& [addr, vec] : by_dst) {
    std::sort(vec.begin(), vec.end(),
              [](const TracerouteRecord* a, const TracerouteRecord* b) {
                return a->utc_time_hours < b->utc_time_hours;
              });
  }

  const double window_h = options.window_minutes / 60.0;
  std::vector<MatchedTest> out;
  out.reserve(tests.size());
  std::size_t matched = 0;
  std::size_t excluded_aborted = 0, excluded_unserved = 0, excluded_failed = 0;

  for (const auto& test : tests) {
    MatchedTest m;
    m.test = &test;
    if (!test.completed()) {
      // Degraded corpus: the test never produced a measurement, so it
      // cannot (and must not) count against the matching rate. Classified
      // and kept in the output for downstream accounting.
      m.outcome = MatchedTest::Outcome::kExcludedIncomplete;
      switch (test.status) {
        case NdtStatus::kAborted: ++excluded_aborted; break;
        case NdtStatus::kUnserved: ++excluded_unserved; break;
        default: ++excluded_failed; break;
      }
      out.push_back(m);
      continue;
    }
    topo::IpAddr client_addr = topo.host(test.client).addr;
    auto it = by_dst.find(client_addr.value);
    if (it != by_dst.end()) {
      const auto& vec = it->second;
      // First traceroute at/after the test within the window.
      auto lo = std::lower_bound(
          vec.begin(), vec.end(), test.utc_time_hours,
          [](const TracerouteRecord* tr, double t) {
            return tr->utc_time_hours < t;
          });
      const TracerouteRecord* best = nullptr;
      if (lo != vec.end() &&
          (*lo)->utc_time_hours <= test.utc_time_hours + window_h) {
        best = *lo;
      }
      if (!best && options.allow_before && lo != vec.begin()) {
        const TracerouteRecord* prev = *(lo - 1);
        if (prev->utc_time_hours >= test.utc_time_hours - window_h) {
          best = prev;
        }
      }
      m.traceroute = best;
    }
    if (m.traceroute) ++matched;
    m.outcome = m.traceroute ? MatchedTest::Outcome::kMatched
                             : MatchedTest::Outcome::kUnmatched;
    out.push_back(m);
  }
  if (stats) {
    stats->total_tests = tests.size();
    stats->eligible = tests.size() - excluded_aborted - excluded_unserved -
                      excluded_failed;
    stats->matched = matched;
    stats->excluded_aborted = excluded_aborted;
    stats->excluded_unserved = excluded_unserved;
    stats->excluded_failed = excluded_failed;
  }
  return out;
}

}  // namespace netcong::measure
