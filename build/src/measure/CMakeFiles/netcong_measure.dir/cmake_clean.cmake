file(REMOVE_RECURSE
  "CMakeFiles/netcong_measure.dir/alexa.cpp.o"
  "CMakeFiles/netcong_measure.dir/alexa.cpp.o.d"
  "CMakeFiles/netcong_measure.dir/ark.cpp.o"
  "CMakeFiles/netcong_measure.dir/ark.cpp.o.d"
  "CMakeFiles/netcong_measure.dir/matching.cpp.o"
  "CMakeFiles/netcong_measure.dir/matching.cpp.o.d"
  "CMakeFiles/netcong_measure.dir/ndt.cpp.o"
  "CMakeFiles/netcong_measure.dir/ndt.cpp.o.d"
  "CMakeFiles/netcong_measure.dir/platform.cpp.o"
  "CMakeFiles/netcong_measure.dir/platform.cpp.o.d"
  "CMakeFiles/netcong_measure.dir/traceroute.cpp.o"
  "CMakeFiles/netcong_measure.dir/traceroute.cpp.o.d"
  "CMakeFiles/netcong_measure.dir/tslp.cpp.o"
  "CMakeFiles/netcong_measure.dir/tslp.cpp.o.d"
  "libnetcong_measure.a"
  "libnetcong_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcong_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
