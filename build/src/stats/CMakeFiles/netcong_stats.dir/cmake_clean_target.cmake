file(REMOVE_RECURSE
  "libnetcong_stats.a"
)
