// Campaign-engine micro-bench: wall-clock of the month-long crowdsourced
// NDT campaign (the hot path every experiment bench funnels through), run
//   (a) serially with no path cache — the seed-equivalent reference, and
//   (b) with the parallel two-phase engine plus a shared PathCache.
// Emits BENCH_campaign.json with both timings, the speedup, and the path
// cache hit rate so later PRs have a perf trajectory. The two runs must
// produce identical results (the engine is deterministic across thread
// counts and with/without the cache); this is cross-checked here and
// enforced exhaustively by campaign_parallel_test.

#include <cstdio>
#include <thread>

#include "common.h"
#include "gen/workload.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace {

// Order-independent fingerprint of campaign output (tests and traceroutes
// are compared in full by the unit tests; the bench just cross-checks).
double fingerprint(const netcong::measure::CampaignResult& r) {
  double acc = 0.0;
  for (const auto& t : r.tests) {
    acc += t.download_mbps + t.upload_mbps + t.flow_rtt_ms +
           static_cast<double>(t.truth_path.links.size());
  }
  for (const auto& tr : r.traceroutes) {
    acc += static_cast<double>(tr.hops.size()) + tr.utc_time_hours;
  }
  acc += static_cast<double>(r.traceroutes_skipped_busy +
                             r.traceroutes_skipped_cached +
                             r.traceroutes_failed);
  return acc;
}

}  // namespace

int main() {
  using namespace netcong;

  bench::print_header("BENCH campaign",
                      "parallel NDT campaign engine vs. serial reference");

  bench::Context ctx(bench::bench_config());
  const int days = 28;
  const double tests_per_client = 10.0;
  const std::uint64_t seed = 7;

  util::Rng schedule_rng(seed);
  gen::WorkloadConfig wl;
  wl.days = days;
  wl.mean_tests_per_client = tests_per_client;
  auto schedule =
      gen::crowdsourced_schedule(ctx.world, ctx.world.clients, wl,
                                 schedule_rng);
  std::printf("schedule: %zu requests over %d days (%zu clients)\n",
              schedule.size(), days, ctx.world.clients.size());

  measure::Platform mlab = ctx.mlab_platform();
  bench::BenchRecorder rec("campaign");

  // (a) serial reference: one worker, no path cache — the cost every test
  // paid in the seed implementation.
  measure::CampaignConfig serial_cfg;
  serial_cfg.threads = 1;
  measure::NdtCampaign serial_campaign(ctx.world, ctx.fwd, ctx.model, mlab,
                                       serial_cfg);
  util::Rng serial_rng(seed);
  bench::Stopwatch sw_serial;
  auto serial = serial_campaign.run(schedule, serial_rng);
  const double serial_ms = sw_serial.elapsed_ms();
  rec.record("serial", serial_ms);
  rec.stat("serial", "tests", static_cast<double>(serial.tests.size()));
  rec.stat("serial", "traceroutes",
           static_cast<double>(serial.traceroutes.size()));

  // (b) parallel engine with a shared path cache.
  const int threads = util::default_thread_count();
  measure::CampaignConfig par_cfg;
  par_cfg.threads = threads;
  measure::NdtCampaign par_campaign(ctx.world, ctx.fwd, ctx.model, mlab,
                                    par_cfg);
  route::PathCache cache(ctx.fwd);
  par_campaign.set_path_cache(&cache);
  util::Rng par_rng(seed);
  bench::Stopwatch sw_par;
  auto parallel = par_campaign.run(schedule, par_rng);
  const double parallel_ms = sw_par.elapsed_ms();
  rec.record("parallel", parallel_ms);
  route::PathCache::Stats cs = cache.stats();
  rec.stat("parallel", "threads", threads);
  rec.stat("parallel", "hardware_threads",
           static_cast<double>(std::thread::hardware_concurrency()));
  rec.stat("parallel", "tests", static_cast<double>(parallel.tests.size()));
  rec.stat("parallel", "cache_hits", static_cast<double>(cs.hits));
  rec.stat("parallel", "cache_misses", static_cast<double>(cs.misses));
  rec.stat("parallel", "cache_hit_rate", cs.hit_rate());
  rec.stat("parallel", "cached_paths", static_cast<double>(cache.size()));

  bool identical = fingerprint(serial) == fingerprint(parallel) &&
                   serial.tests.size() == parallel.tests.size() &&
                   serial.traceroutes.size() == parallel.traceroutes.size();
  std::printf("determinism cross-check: %s\n",
              identical ? "identical output" : "MISMATCH");

  // (c) cache-only serial run, isolating the PathCache win from threading
  // (relevant on small machines where the parallel phase cannot fan out).
  measure::CampaignConfig cached_cfg;
  cached_cfg.threads = 1;
  measure::NdtCampaign cached_campaign(ctx.world, ctx.fwd, ctx.model, mlab,
                                       cached_cfg);
  route::PathCache cache2(ctx.fwd);
  cached_campaign.set_path_cache(&cache2);
  util::Rng cached_rng(seed);
  bench::Stopwatch sw_cached;
  auto cached = cached_campaign.run(schedule, cached_rng);
  const double cached_ms = sw_cached.elapsed_ms();
  rec.record("serial_cached", cached_ms);
  rec.stat("serial_cached", "cache_hit_rate", cache2.stats().hit_rate());
  rec.stat("serial_cached", "tests",
           static_cast<double>(cached.tests.size()));

  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  const double cache_speedup = cached_ms > 0.0 ? serial_ms / cached_ms : 0.0;
  rec.stat("parallel", "speedup_vs_serial", speedup);
  rec.stat("serial_cached", "speedup_vs_serial", cache_speedup);
  rec.write();
  if (!identical) {
    std::printf("ERROR: parallel output diverged from serial reference\n");
    return 1;
  }
  std::printf("tests: %zu, traceroutes: %zu (busy-skipped %zu, cached %zu, "
              "failed %zu)\n",
              parallel.tests.size(), parallel.traceroutes.size(),
              parallel.traceroutes_skipped_busy,
              parallel.traceroutes_skipped_cached,
              parallel.traceroutes_failed);
  std::printf("path cache: %.1f%% hit rate (%llu hits / %llu misses)\n",
              100.0 * cs.hit_rate(),
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses));
  std::printf("serial %.0f ms | serial+cache %.0f ms | parallel+cache %.0f ms\n",
              serial_ms, cached_ms, parallel_ms);
  bench::print_footnote(util::format(
      "speedup vs. serial seed: %.2fx with %d thread(s); cache-only: %.2fx",
      speedup, threads, cache_speedup));
  return 0;
}
