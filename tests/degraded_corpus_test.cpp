// Inference robustness against degraded corpora: MAP-IT precision and
// bdrmap border recall must fall gracefully — documented bounds, classified
// exclusions, no crash — as traceroute loss is injected at 5%, 20% and 50%,
// and the diurnal analysis must flag sparse hours instead of reporting them
// bare (paper Sections 4.1 and 6.1). Ends with the acceptance run: a 20%-
// fault campaign driven through matching, MAP-IT, bdrmap, and diurnal
// inference with every record accounted for.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/diurnal.h"
#include "gen/workload.h"
#include "helpers.h"
#include "infer/alias.h"
#include "infer/bdrmap.h"
#include "infer/mapit.h"
#include "measure/ark.h"
#include "measure/degrade.h"
#include "measure/matching.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "sim/faults.h"
#include "sim/throughput.h"

namespace netcong::infer {
namespace {

using gen::World;

struct Stack {
  explicit Stack(const World& w)
      : world(w),
        bgp(*w.topo),
        fwd(*w.topo, bgp),
        ip2as(*w.topo),
        orgs(*w.topo) {}
  const World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  Ip2As ip2as;
  OrgMap orgs;
};

Stack& stack() {
  static Stack s(test::tiny_world());
  return s;
}

// Server->client corpus for MAP-IT (the campaign-shaped view).
const std::vector<measure::TracerouteRecord>& mapit_corpus() {
  static const std::vector<measure::TracerouteRecord> corpus = [] {
    Stack& s = stack();
    util::Rng rng(17);
    measure::TracerouteOptions opt;
    std::vector<measure::TracerouteRecord> out;
    for (std::uint32_t server : s.world.mlab_servers) {
      for (std::size_t i = 0; i < s.world.clients.size(); i += 2) {
        out.push_back(measure::run_traceroute(
            *s.world.topo, s.fwd, server,
            s.world.topo->host(s.world.clients[i]).addr, 12.0, opt, rng));
      }
    }
    return out;
  }();
  return corpus;
}

std::vector<measure::TracerouteRecord> degraded(
    const std::vector<measure::TracerouteRecord>& corpus, double loss,
    measure::DegradeStats* stats = nullptr) {
  sim::FaultConfig cfg;
  cfg.enabled = true;
  sim::FaultInjector inj(cfg, 2024);
  measure::DegradeOptions opt;
  opt.trace_loss = loss;
  opt.hop_loss = loss;
  return measure::degrade_corpus(corpus, inj, opt, stats);
}

TEST(DegradedCorpus, DegraderAccountsForEveryTrace) {
  measure::DegradeStats stats;
  auto out = degraded(mapit_corpus(), 0.20, &stats);
  EXPECT_TRUE(stats.accounted());
  EXPECT_EQ(stats.traces_in, mapit_corpus().size());
  EXPECT_EQ(stats.traces_out, out.size());
  EXPECT_GT(stats.traces_dropped, 0u);
  EXPECT_GT(stats.hops_blanked, 0u);

  // Deterministic: same seed, same loss -> identical corpus size and stars.
  measure::DegradeStats again;
  auto out2 = degraded(mapit_corpus(), 0.20, &again);
  EXPECT_EQ(again.traces_dropped, stats.traces_dropped);
  EXPECT_EQ(again.hops_blanked, stats.hops_blanked);
  ASSERT_EQ(out2.size(), out.size());
}

// MAP-IT on progressively lossier corpora: precision holds (the multipass
// evidence logic rejects what it cannot corroborate) while recall — the
// number of discovered crossings — shrinks. These bounds are the documented
// degradation contract for the tiny world.
TEST(DegradedCorpus, MapItPrecisionDegradesGracefully) {
  Stack& s = stack();
  auto clean = run_mapit(mapit_corpus(), s.ip2as, s.orgs);
  auto clean_acc = evaluate_mapit(clean, *s.world.topo, s.orgs);
  ASSERT_GT(clean.crossings.size(), 10u);
  ASSERT_GT(clean_acc.precision(), 0.90);
  EXPECT_TRUE(clean.coverage.accounted());
  EXPECT_EQ(clean.coverage.traces_total, mapit_corpus().size());

  struct Level {
    double loss;
    double min_precision;
  };
  for (const Level level : {Level{0.05, 0.85}, {0.20, 0.80}, {0.50, 0.70}}) {
    SCOPED_TRACE(level.loss);
    auto corpus = degraded(mapit_corpus(), level.loss);
    auto result = run_mapit(corpus, s.ip2as, s.orgs);
    auto acc = evaluate_mapit(result, *s.world.topo, s.orgs);

    // Never crashes, always accounts for its input.
    EXPECT_TRUE(result.coverage.accounted());
    EXPECT_EQ(result.coverage.traces_total, corpus.size());
    // The coverage annotation reflects the injected hop loss.
    EXPECT_LT(result.coverage.hop_fraction(),
              clean.coverage.hop_fraction() + 1e-9);
    // Graceful: still finds borders, still precise within the bound.
    EXPECT_GT(result.crossings.size(), 0u);
    if (acc.crossings_checked > 0) {
      EXPECT_GE(acc.precision(), level.min_precision);
    }
    // Recall shrinks rather than inventing crossings.
    EXPECT_LE(result.crossings.size(), clean.crossings.size());
  }
}

// bdrmap border recall against the clean-corpus reference map.
TEST(DegradedCorpus, BdrmapBorderRecallDegradesGracefully) {
  Stack& s = stack();
  std::uint32_t vp = s.world.ark_vps[0];
  topo::Asn vp_as = s.world.topo->host(vp).asn;
  util::Rng rng(31);
  measure::ArkCampaignOptions opt;
  auto corpus =
      measure::ark_full_prefix_campaign(s.world, s.fwd, vp, opt, rng);
  AliasResolver aliases(*s.world.topo, 0.9, 42);
  auto reference = run_bdrmap(corpus, vp_as, s.ip2as, s.orgs,
                              s.world.topo->relationships(), aliases);
  ASSERT_GT(reference.borders.size(), 0u);
  EXPECT_DOUBLE_EQ(bdrmap_neighbor_recall(reference, reference), 1.0);

  struct Level {
    double loss;
    double min_recall;
  };
  for (const Level level : {Level{0.05, 0.80}, {0.20, 0.55}, {0.50, 0.20}}) {
    SCOPED_TRACE(level.loss);
    auto lossy = degraded(corpus, level.loss);
    auto result = run_bdrmap(lossy, vp_as, s.ip2as, s.orgs,
                             s.world.topo->relationships(), aliases);
    EXPECT_TRUE(result.coverage().accounted());
    double recall = bdrmap_neighbor_recall(result, reference);
    EXPECT_GE(recall, level.min_recall);
    EXPECT_LE(recall, 1.0);
    // Blanked hops can shift where a crossing is inferred, so a lossy
    // corpus may invent a neighbor the clean corpus never showed — exactly
    // the "could fail or produce an incorrect inference" failure mode the
    // paper warns about. Graceful means such inventions stay a small
    // minority of the map, not that they never happen.
    std::set<topo::Asn> ref_neighbors;
    for (const auto& b : reference.borders) ref_neighbors.insert(b.neighbor);
    std::size_t invented = 0;
    for (const auto& b : result.borders) {
      invented += ref_neighbors.count(b.neighbor) ? 0 : 1;
    }
    EXPECT_LE(invented, result.borders.size() / 4 + 1);
  }
}

// A stale prefix2AS view (wrong origins) must not crash MAP-IT; it costs
// precision, which is the paper's point about dataset staleness.
TEST(DegradedCorpus, StalePrefix2AsStillRuns) {
  Stack& s = stack();
  sim::FaultConfig cfg;
  cfg.enabled = true;
  cfg.prefix2as_stale_fraction = 0.2;
  sim::FaultInjector inj(cfg, 5);
  Ip2As stale(inj.degrade_prefix2as(s.world.topo->announced_prefixes()),
              s.world.topo->ixp_prefixes());
  auto result = run_mapit(mapit_corpus(), stale, s.orgs);
  EXPECT_TRUE(result.coverage.accounted());
  EXPECT_GT(result.coverage.traces_used, 0u);
}

// ---- the acceptance run: a 20%-severity faulted campaign, end to end ----

struct CampaignFixture {
  CampaignFixture()
      : world(test::tiny_world()),
        bgp(*world.topo),
        fwd(*world.topo, bgp),
        model(*world.topo, *world.traffic),
        mlab("mlab", *world.topo, world.mlab_servers),
        faults(sim::FaultConfig::scaled(0.2), 99) {
    gen::WorkloadConfig wl;
    wl.days = 3;
    wl.mean_tests_per_client = 6.0;
    util::Rng sched_rng(3);
    auto schedule =
        gen::crowdsourced_schedule(world, world.clients, wl, sched_rng);
    scheduled = schedule.size();
    measure::NdtCampaign campaign(world, fwd, model, mlab,
                                  measure::CampaignConfig{});
    campaign.set_faults(&faults);
    util::Rng rng(4);
    result = campaign.run(schedule, rng);
  }
  const World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  measure::Platform mlab;
  sim::FaultInjector faults;
  std::size_t scheduled = 0;
  measure::CampaignResult result;
};

CampaignFixture& faulted_campaign() {
  static CampaignFixture f;
  return f;
}

TEST(FaultedPipeline, CampaignAccountsForEveryRecord) {
  CampaignFixture& f = faulted_campaign();
  const sim::DataQuality& q = f.result.quality;
  EXPECT_TRUE(q.consistent());
  EXPECT_EQ(q.tests_attempted, f.scheduled);
  EXPECT_EQ(f.result.tests.size(), f.scheduled);  // stub rows kept, flagged
  EXPECT_GT(q.tests_completed, 0u);
  // The 20% severity actually degraded the campaign.
  EXPECT_GT(q.tests_aborted + q.tests_unserved, 0u);
  EXPECT_GT(q.tests_truncated + q.webstats_dropped, 0u);
  EXPECT_GT(q.traceroutes_scheduled, 0u);
  EXPECT_GT(q.traceroutes_completed, 0u);
}

TEST(FaultedPipeline, MatchingClassifiesIncompleteTests) {
  CampaignFixture& f = faulted_campaign();
  measure::MatchStats stats;
  auto matched = measure::match_tests(f.result.tests, f.result.traceroutes,
                                      *f.world.topo, {}, &stats);
  EXPECT_EQ(matched.size(), f.result.tests.size());
  EXPECT_TRUE(stats.accounted());
  EXPECT_EQ(stats.total_tests, f.scheduled);
  EXPECT_LT(stats.eligible, stats.total_tests);
  EXPECT_GT(stats.matched, 0u);
  EXPECT_GT(stats.excluded_aborted + stats.excluded_unserved +
                stats.excluded_failed,
            0u);
  // The Section 4.1 rate is computed over tests that ran, and the overall
  // coverage is necessarily lower.
  EXPECT_GE(stats.fraction(), stats.coverage());
  std::size_t excluded_rows = 0;
  for (const auto& m : matched) {
    if (m.outcome == measure::MatchedTest::Outcome::kExcludedIncomplete) {
      ++excluded_rows;
      EXPECT_EQ(m.traceroute, nullptr);
    }
  }
  EXPECT_EQ(excluded_rows, stats.excluded_aborted + stats.excluded_unserved +
                               stats.excluded_failed);
}

TEST(FaultedPipeline, InferenceRunsOnFaultedTraceroutes) {
  CampaignFixture& f = faulted_campaign();
  Stack& s = stack();
  auto mapit = run_mapit(f.result.traceroutes, s.ip2as, s.orgs);
  EXPECT_TRUE(mapit.coverage.accounted());
  EXPECT_GT(mapit.coverage.traces_used, 0u);
  EXPECT_GT(mapit.crossings.size(), 0u);

  topo::Asn vp_as =
      f.world.topo->host(f.world.mlab_servers[0]).asn;
  AliasResolver aliases(*f.world.topo, 0.9, 42);
  auto bdr = run_bdrmap(f.result.traceroutes, vp_as, s.ip2as, s.orgs,
                        f.world.topo->relationships(), aliases);
  EXPECT_TRUE(bdr.coverage().accounted());
  EXPECT_GT(bdr.coverage().traces_used, 0u);
}

TEST(FaultedPipeline, DiurnalAnalysisCountsExclusionsAndSparseHours) {
  CampaignFixture& f = faulted_campaign();
  auto source_of = [&](const measure::NdtRecord& t) {
    return f.world.topo->as_info(t.server_asn).name;
  };
  auto isp_of = [&](const measure::NdtRecord& t) {
    return f.world.topo->as_info(t.client_asn).name;
  };
  core::DiurnalBuildStats stats;
  auto groups = core::build_diurnal_groups(f.result.tests, f.world, source_of,
                                           isp_of, &stats);
  EXPECT_TRUE(stats.accounted());
  EXPECT_EQ(stats.total, f.result.tests.size());
  EXPECT_GT(stats.used, 0u);
  EXPECT_GT(stats.incomplete, 0u);  // the faulted records were excluded
  EXPECT_LT(stats.coverage(), 1.0);
  ASSERT_GT(groups.size(), 0u);

  // Sparse-hour flagging (Section 6.1): with a 3-day schedule every group
  // has hours below an absurd floor, and none below zero.
  const core::DiurnalGroup& g = groups.begin()->second;
  EXPECT_EQ(core::low_sample_hours(g, 0).size(), 0u);
  EXPECT_EQ(core::low_sample_hours(g, 1u << 20).size(), 24u);

  // Congestion calls on sparse groups are flagged, not silently cleared.
  auto calls = core::infer_congestion(groups, 0.1, 1u << 20);
  ASSERT_EQ(calls.size(), groups.size());
  for (const auto& c : calls) {
    EXPECT_TRUE(c.insufficient_samples);
    EXPECT_FALSE(c.congested);
    EXPECT_EQ(c.low_sample_hour_count, 24u);
  }
  // With a floor of zero samples no hour is flagged sparse.
  for (const auto& c : core::infer_congestion(groups, 0.1, 0)) {
    EXPECT_EQ(c.low_sample_hour_count, 0u);
  }
}

}  // namespace
}  // namespace netcong::infer
