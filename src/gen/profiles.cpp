#include "gen/profiles.h"

namespace netcong::gen {

const std::vector<AccessIspProfile>& default_access_profiles() {
  static const std::vector<AccessIspProfile> profiles = [] {
    std::vector<AccessIspProfile> p;
    p.push_back({.name = "Comcast",
                 .org_name = "Comcast Cable Communications",
                 .asns = {7922, 7725, 22909, 33491, 33651},
                 .subscribers = 23329000,
                 .tech = AccessTech::kCable,
                 .transit_free = false,
                 .direct_host_peering = 0.96,
                 .n_cities = 18,
                 .n_customers = 1115,
                 .n_peers = 41,
                 .n_providers = 2,
                 .parallel_link_propensity = 0.15,
                 .vp_sites = {"bed-us", "mry-us", "atl2-us", "wbu2-us",
                              "bos5-us"}});
    p.push_back({.name = "AT&T",
                 .org_name = "AT&T Services",
                 .asns = {7018, 6389, 7132},
                 .subscribers = 15778000,
                 .tech = AccessTech::kDsl,
                 .transit_free = true,
                 .direct_host_peering = 0.91,
                 .n_cities = 16,
                 .n_customers = 2123,
                 .n_peers = 40,
                 .n_providers = 0,
                 .parallel_link_propensity = 0.1,
                 .vp_sites = {"san6-us"}});
    p.push_back({.name = "TWC",
                 .org_name = "Time Warner Cable",
                 .asns = {11351, 20001, 11427, 10796},
                 .subscribers = 13313000,
                 .tech = AccessTech::kCable,
                 .transit_free = false,
                 .direct_host_peering = 0.75,
                 .n_cities = 12,
                 .n_customers = 550,
                 .n_peers = 28,
                 .n_providers = 2,
                 .parallel_link_propensity = 0.1,
                 .vp_sites = {"ith-us", "lex-us", "san4-us"}});
    p.push_back({.name = "Verizon",
                 .org_name = "Verizon Business",
                 .asns = {701, 6167, 19262},
                 .subscribers = 9228000,
                 .tech = AccessTech::kFiber,
                 .transit_free = true,
                 .direct_host_peering = 0.86,
                 .n_cities = 15,
                 .n_customers = 1304,
                 .n_peers = 21,
                 .n_providers = 0,
                 .parallel_link_propensity = 0.1,
                 .vp_sites = {"mnz-us"}});
    p.push_back({.name = "CenturyLink",
                 .org_name = "CenturyLink Communications",
                 .asns = {209, 22561},
                 .subscribers = 6048000,
                 .tech = AccessTech::kDsl,
                 .transit_free = true,
                 .direct_host_peering = 0.82,
                 .n_cities = 14,
                 .n_customers = 1572,
                 .n_peers = 42,
                 .n_providers = 0,
                 .parallel_link_propensity = 0.1,
                 .vp_sites = {"aza-us"}});
    p.push_back({.name = "Charter",
                 .org_name = "Charter Communications",
                 .asns = {20115},
                 .subscribers = 5572000,
                 .tech = AccessTech::kCable,
                 .transit_free = false,
                 .direct_host_peering = 0.37,
                 .n_cities = 10,
                 .n_customers = 80,
                 .n_peers = 15,
                 .n_providers = 3,
                 .parallel_link_propensity = 0.1,
                 .vp_sites = {}});
    p.push_back({.name = "Cox",
                 .org_name = "Cox Communications",
                 .asns = {22773},
                 .subscribers = 4300000,
                 .tech = AccessTech::kCable,
                 .transit_free = false,
                 .direct_host_peering = 0.39,
                 .n_cities = 8,
                 .n_customers = 365,
                 .n_peers = 21,
                 .n_providers = 3,
                 .parallel_link_propensity = 0.55,
                 .vp_sites = {"msy-us", "san2-us"}});
    p.push_back({.name = "Cablevision",
                 .org_name = "Cablevision Systems",
                 .asns = {6128},
                 .subscribers = 2809000,
                 .tech = AccessTech::kCable,
                 .transit_free = false,
                 .direct_host_peering = 0.7,
                 .n_cities = 3,
                 .n_customers = 30,
                 .n_peers = 12,
                 .n_providers = 2,
                 .parallel_link_propensity = 0.1,
                 .vp_sites = {}});
    p.push_back({.name = "Frontier",
                 .org_name = "Frontier Communications",
                 .asns = {5650, 7011},
                 .subscribers = 2444000,
                 .tech = AccessTech::kDsl,
                 .transit_free = false,
                 .direct_host_peering = 0.47,
                 .n_cities = 6,
                 .n_customers = 29,
                 .n_peers = 17,
                 .n_providers = 3,
                 .parallel_link_propensity = 0.1,
                 .vp_sites = {"igx-us"}});
    p.push_back({.name = "Suddenlink",
                 .org_name = "Suddenlink Communications",
                 .asns = {19108},
                 .subscribers = 1467000,
                 .tech = AccessTech::kCable,
                 .transit_free = false,
                 .direct_host_peering = 0.5,
                 .n_cities = 4,
                 .n_customers = 20,
                 .n_peers = 10,
                 .n_providers = 2,
                 .parallel_link_propensity = 0.1,
                 .vp_sites = {}});
    p.push_back({.name = "Windstream",
                 .org_name = "Windstream Communications",
                 .asns = {7029},
                 .subscribers = 1095100,
                 .tech = AccessTech::kDsl,
                 .transit_free = false,
                 .direct_host_peering = 0.06,
                 .n_cities = 6,
                 .n_customers = 60,
                 .n_peers = 12,
                 .n_providers = 3,
                 .parallel_link_propensity = 0.1,
                 .vp_sites = {}});
    p.push_back({.name = "Mediacom",
                 .org_name = "Mediacom Communications",
                 .asns = {30036},
                 .subscribers = 1085000,
                 .tech = AccessTech::kCable,
                 .transit_free = false,
                 .direct_host_peering = 0.4,
                 .n_cities = 4,
                 .n_customers = 10,
                 .n_peers = 8,
                 .n_providers = 2,
                 .parallel_link_propensity = 0.1,
                 .vp_sites = {}});
    p.push_back({.name = "Sonic",
                 .org_name = "Sonic Telecom",
                 .asns = {46375},
                 .subscribers = 100000,
                 .tech = AccessTech::kFiber,
                 .transit_free = false,
                 .direct_host_peering = 0.6,
                 .n_cities = 2,
                 .n_customers = 6,
                 .n_peers = 10,
                 .n_providers = 2,
                 .parallel_link_propensity = 0.05,
                 .vp_sites = {"wvi-us"}});
    p.push_back({.name = "RCN",
                 .org_name = "RCN Telecom Services",
                 .asns = {6079},
                 .subscribers = 400000,
                 .tech = AccessTech::kCable,
                 .transit_free = false,
                 .direct_host_peering = 0.5,
                 .n_cities = 4,
                 .n_customers = 35,
                 .n_peers = 36,
                 .n_providers = 2,
                 .parallel_link_propensity = 0.05,
                 .vp_sites = {"bed3-us"}});
    return p;
  }();
  return profiles;
}

const std::vector<TransitProfile>& default_transit_profiles() {
  static const std::vector<TransitProfile> profiles = {
      {"Level3", "Level 3 Communications", 3356, true, 20, 800},
      {"Cogent", "Cogent Communications", 174, true, 18, 700},
      {"GTT", "GTT Communications", 3257, true, 14, 300},
      {"Tata", "Tata Communications America", 6453, true, 12, 250},
      {"XO", "XO Communications", 2828, true, 12, 200},
      {"Zayo", "Zayo Bandwidth", 6461, true, 12, 220},
      {"NTT", "NTT America", 2914, false, 14, 400},
      {"Telia", "Telia Carrier", 1299, false, 10, 260},
      {"HE", "Hurricane Electric", 6939, false, 16, 350},
      {"Internap", "Internap Network Services", 14744, false, 8, 90},
  };
  return profiles;
}

const std::vector<ContentProfile>& default_content_profiles() {
  static const std::vector<ContentProfile> profiles = [] {
    std::vector<ContentProfile> p = {
        {"GoogleCDN", 15169, 14, 14.0},  {"Akamai", 20940, 12, 10.0},
        {"CloudCDN", 13335, 12, 8.0},    {"AmazonCDN", 16509, 12, 9.0},
        {"Fastly", 54113, 8, 4.0},       {"EdgeCast", 15133, 8, 3.0},
        {"Netflix", 2906, 10, 5.0},      {"Facebook", 32934, 10, 6.0},
        {"Microsoft", 8075, 10, 5.0},    {"Apple", 714, 8, 4.0},
        {"Yahoo", 10310, 6, 2.0},        {"Twitter", 13414, 6, 2.0},
        {"LinkedIn", 14413, 4, 1.0},     {"Wikimedia", 14907, 4, 1.5},
        {"Dropbox", 19679, 4, 1.0},      {"Pandora", 40428, 3, 0.7},
    };
    // A tail of smaller content hosters (news sites, e-commerce, ad tech)
    // that resolve the long tail of the Alexa list.
    for (int i = 0; i < 24; ++i) {
      ContentProfile c;
      c.name = "ContentHoster" + std::to_string(i + 1);
      c.asn = 60000 + static_cast<topo::Asn>(i);
      c.n_cities = 1 + (i % 4);
      c.alexa_weight = 0.5;
      p.push_back(c);
    }
    return p;
  }();
  return profiles;
}

const std::vector<TierOption>& tier_mix(AccessTech tech) {
  static const std::vector<TierOption> cable = {
      {25, 5, 0.30}, {50, 10, 0.35}, {105, 20, 0.20},
      {150, 20, 0.10}, {300, 30, 0.05}};
  static const std::vector<TierOption> dsl = {
      {3, 0.8, 0.15}, {6, 1, 0.20}, {12, 1.5, 0.25},
      {18, 2, 0.20},  {24, 3, 0.10}, {45, 6, 0.10}};
  static const std::vector<TierOption> fiber = {
      {50, 50, 0.35}, {75, 75, 0.25}, {150, 150, 0.25}, {500, 500, 0.15}};
  switch (tech) {
    case AccessTech::kCable:
      return cable;
    case AccessTech::kDsl:
      return dsl;
    case AccessTech::kFiber:
      return fiber;
  }
  return cable;
}

double access_delay_ms(AccessTech tech) {
  switch (tech) {
    case AccessTech::kCable:
      return 8.0;
    case AccessTech::kDsl:
      return 18.0;
    case AccessTech::kFiber:
      return 3.0;
  }
  return 8.0;
}

}  // namespace netcong::gen
