#pragma once

// Router-level path construction on top of AS-level BGP routes:
//  * hot-potato egress: traffic leaves an AS at the interconnection point
//    geographically closest to where it currently is;
//  * ECMP: among equally good interconnection links (same city, including
//    parallel links between the same router pair), the choice is a stable
//    hash of the flow key — per-flow load balancing;
//  * intra-AS segments go via per-city backbone routers.
//
// The resulting diversity of router-level paths between a fixed AS pair is
// exactly the phenomenon that breaks the paper's Assumption 3 (Section 4.3).

#include <algorithm>
#include <optional>
#include <vector>

#include "route/bgp.h"
#include "route/path.h"
#include "topo/topology.h"
#include "util/flat_map.h"

namespace netcong::route {

class Forwarder {
 public:
  Forwarder(const topo::Topology& topo, const BgpRouting& bgp);

  // Router-level path from a host to a destination address. The destination
  // may be a host, a router interface, or any address inside an AS's
  // announced space (the path then ends at that AS's backbone). Returns an
  // invalid path if unreachable.
  RouterPath path(std::uint32_t src_host, topo::IpAddr dst,
                  const FlowKey& key) const;

  // The backbone router of `asn` in `city`; invalid id if the AS has no
  // presence there.
  topo::RouterId backbone(topo::Asn asn, topo::CityId city) const;

  // Marks links as withdrawn (peering de-provisioned): path construction
  // skips them everywhere a link is chosen, so traffic re-routes over the
  // surviving candidates — or the path comes back invalid when none
  // remain. With an empty set (the default) behaviour is byte-for-byte
  // identical to a forwarder without the feature; sim/adversary builds its
  // post-epoch route view from this. Not thread-safe against concurrent
  // path() calls: set before sharing the forwarder.
  void set_withdrawn_links(std::vector<topo::LinkId> links);
  bool link_withdrawn(topo::LinkId id) const {
    return !withdrawn_.empty() &&
           std::binary_search(withdrawn_.begin(), withdrawn_.end(), id);
  }

 private:
  // Appends the intra-AS segment from `from` to `to` (same AS); returns
  // false if the internal topology is missing a required link.
  bool intra_as_segment(topo::RouterId from, topo::RouterId to,
                        const FlowKey& key, std::uint64_t salt,
                        RouterPath& out) const;
  // Appends a single router-to-router move across one direct link (choosing
  // among parallel links by flow hash).
  bool traverse(topo::RouterId from, topo::RouterId to, const FlowKey& key,
                std::uint64_t salt, RouterPath& out) const;

  // Chooses the interdomain link for the transition from `cur_as` to
  // `next_as` given the current position and the final destination city.
  // The score blends hot-potato (distance from here to the egress site) with
  // a regional pull toward the destination, which is what makes tests from
  // one server cross different IP-level links depending on the client's
  // region (paper Section 4.3, Table 2).
  std::optional<topo::LinkId> choose_interdomain(topo::Asn cur_as,
                                                 topo::Asn next_as,
                                                 topo::RouterId cur_router,
                                                 topo::CityId dest_city,
                                                 const FlowKey& key,
                                                 std::uint64_t salt) const;

  const topo::Topology* topo_;
  const BgpRouting* bgp_;
  // (asn, city) -> backbone router.
  util::FlatMap<std::uint64_t, topo::RouterId> backbone_;
  // Sorted withdrawn-link set; empty in the common (honest) case.
  std::vector<topo::LinkId> withdrawn_;
};

}  // namespace netcong::route
