#pragma once

// Result<T>: a value-or-error return type for fallible operations that must
// not throw — the degradation contract of the fault-injection layer is that
// failures deep inside a campaign or a parallel loop are *classified and
// counted*, never thrown past the caller. Errors are plain strings (this is
// a simulator: errors are for operators reading a report, not for matching).

#include <cassert>
#include <string>
#include <utility>

namespace netcong::util {

template <typename T>
class [[nodiscard]] Result {
 public:
  static Result success(T value) {
    Result r;
    r.ok_ = true;
    r.value_ = std::move(value);
    return r;
  }
  static Result failure(std::string error) {
    Result r;
    r.ok_ = false;
    r.error_ = std::move(error);
    return r;
  }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  const T& value() const {
    assert(ok_);
    return value_;
  }
  T& value() {
    assert(ok_);
    return value_;
  }
  const T& operator*() const { return value(); }
  T& operator*() { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Empty string when ok().
  const std::string& error() const { return error_; }

 private:
  Result() = default;
  bool ok_ = false;
  T value_{};
  std::string error_;
};

// Status: a Result carrying no value.
struct Unit {};
using Status = Result<Unit>;

inline Status ok_status() { return Status::success(Unit{}); }
inline Status error_status(std::string error) {
  return Status::failure(std::move(error));
}

}  // namespace netcong::util
