// Congestion-control strategy tests (DESIGN.md §13):
//
//   * NewReno regression pins: the strategy extraction must be bit-identical
//     to the historical inline TcpFlow logic. Each pinned constant below is
//     the FNV-1a scenario fingerprint captured from the pre-refactor sender
//     (full traces — max_trace_samples = 0 — because the legacy recorder was
//     unbounded). Any change to NewReno, the sender's ack/loss ordering, or
//     the fingerprint definition shows up as a mismatch here.
//   * Unit-level strategy behavior: window arithmetic of NewReno and Cubic,
//     BBR's model estimators and phase machine, driven by synthetic acks.
//   * Scenario-level behavior: Cubic fills a pipe at least as well as
//     NewReno; BBR holds deep-buffer RTT near the propagation floor.
//   * AccessInterdomain: cross/local flows touch exactly one queue, and the
//     constrained hop is the one that drops.
//   * Trace downsampling: bounded, deterministic, and goodput-preserving.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>

#include "sim/packet/access_interdomain.h"
#include "sim/packet/cc.h"
#include "sim/packet/dumbbell.h"

namespace netcong::sim::packet {
namespace {

// Scenario fingerprint: flow count, per-flow stats fingerprints in index
// order, then bottleneck counters — matches the pre-refactor capture
// harness exactly.
std::uint64_t scenario_fp(const DumbbellResult& r) {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xffu)) * 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(r.flows.size()));
  for (const auto& f : r.flows) mix(stats_fingerprint(f.stats));
  mix(static_cast<std::uint64_t>(r.bottleneck_drops));
  mix(static_cast<std::uint64_t>(r.bottleneck_delivered));
  return h;
}

Dumbbell::Params link(double mbps, int buf, double dur) {
  Dumbbell::Params p;
  p.bottleneck_mbps = mbps;
  p.buffer_packets = buf;
  p.duration_s = dur;
  return p;
}

FlowSpec full_trace_flow(double rtt_s, double start_s = 0.0) {
  FlowSpec s;
  s.base_rtt_s = rtt_s;
  s.start_time_s = start_s;
  s.max_trace_samples = 0;  // legacy unbounded recording
  return s;
}

// --- NewReno bit-identity pins --------------------------------------------

TEST(NewRenoPin, SingleFlowFingerprintAndGoodput) {
  Dumbbell d(link(50, 400, 20));
  d.add_flow(full_trace_flow(0.03));
  DumbbellResult r = d.run();
  EXPECT_EQ(scenario_fp(r), 0x8ec3456bfbf254bcull);
  EXPECT_NEAR(r.flows[0].goodput_mbps, 48.369600, 1e-6);
}

TEST(NewRenoPin, ThreeFlowFairSharing) {
  Dumbbell d(link(60, 400, 30));
  for (int i = 0; i < 3; ++i) d.add_flow(full_trace_flow(0.04));
  EXPECT_EQ(scenario_fp(d.run()), 0x1d0b095237af3a0eull);
}

TEST(NewRenoPin, ShallowBufferLossy) {
  Dumbbell d(link(20, 60, 20));
  d.add_flow(full_trace_flow(0.03));
  d.add_flow(full_trace_flow(0.03));
  EXPECT_EQ(scenario_fp(d.run()), 0xfb60d26059a42a3eull);
}

TEST(NewRenoPin, SelfQueueing) {
  Dumbbell d(link(20, 300, 15));
  d.add_flow(full_trace_flow(0.02));
  EXPECT_EQ(scenario_fp(d.run()), 0x3a9b7c54727d06e6ull);
}

TEST(NewRenoPin, LateJoinerAgainstStandingQueue) {
  Dumbbell d(link(20, 250, 25));
  for (int i = 0; i < 4; ++i) d.add_flow(full_trace_flow(0.02));
  d.add_flow(full_trace_flow(0.02, 10.0));
  EXPECT_EQ(scenario_fp(d.run()), 0x1bedf505de8f6260ull);
}

TEST(NewRenoPin, Sec62TestFlowWindow) {
  Dumbbell d(link(100, 400, 40));
  for (int i = 0; i < 8; ++i) d.add_flow(full_trace_flow(0.04));
  FlowSpec t = full_trace_flow(0.04, 25.0);
  t.stop_time_s = 35.0;
  d.add_flow(t);
  EXPECT_EQ(scenario_fp(d.run()), 0xaaa8471b28fc5580ull);
}

// --- strategy unit behavior -----------------------------------------------

TEST(CcAlgoNames, RoundTripAndAliases) {
  for (CcAlgo algo : {CcAlgo::kNewReno, CcAlgo::kCubic, CcAlgo::kBbr}) {
    CcAlgo parsed;
    ASSERT_TRUE(parse_cc_algo(cc_algo_name(algo), &parsed));
    EXPECT_EQ(parsed, algo);
  }
  CcAlgo parsed;
  EXPECT_TRUE(parse_cc_algo("newreno", &parsed));
  EXPECT_EQ(parsed, CcAlgo::kNewReno);
  EXPECT_FALSE(parse_cc_algo("vegas", &parsed));
  EXPECT_FALSE(parse_cc_algo("RENO", &parsed));
}

CcAck ack_at(double now_s, double rtt_s, std::int64_t delivered,
             double in_flight) {
  CcAck a;
  a.now_s = now_s;
  a.rtt_s = rtt_s;
  a.delivered = delivered;
  a.in_flight = in_flight;
  return a;
}

TEST(NewRenoCcUnit, SlowStartThenAimd) {
  NewRenoCc cc(10.0, 1000.0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.0);
  cc.on_ack(ack_at(0.1, 0.02, 1, 9));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 11.0);  // slow start: +1 per ack

  cc.on_dupack_loss(0.2);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 5.5);  // halved, ssthresh = cwnd

  cc.on_ack(ack_at(0.3, 0.02, 2, 5));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 5.5 + 1.0 / 5.5);  // congestion avoidance

  cc.on_timeout(0.4);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
}

TEST(NewRenoCcUnit, HonorsMaxCwnd) {
  NewRenoCc cc(10.0, 12.0);
  for (int i = 0; i < 10; ++i) cc.on_ack(ack_at(0.1 * i, 0.02, i, 10));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 12.0);
}

TEST(CubicCcUnit, GentlerCutAndFastConvergence) {
  CubicCc cc(100.0, 1000.0);
  cc.on_dupack_loss(1.0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 70.0);   // beta = 0.7 (NewReno would halve)
  EXPECT_DOUBLE_EQ(cc.w_max(), 100.0);

  // Second loss below the previous peak: fast convergence remembers a
  // smaller W_max, cwnd * (2 - beta) / 2.
  cc.on_dupack_loss(2.0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 49.0);
  EXPECT_DOUBLE_EQ(cc.w_max(), 70.0 * (2.0 - 0.7) / 2.0);
}

TEST(CubicCcUnit, GrowsBackTowardWmaxAlongCubic) {
  CubicCc cc(100.0, 1000.0);
  cc.on_dupack_loss(1.0);  // w_max = 100, cwnd = 70, epoch resets
  double after_cut = cc.cwnd();
  // First post-loss ack starts the epoch; K = cbrt((100-70)/0.4) ≈ 4.2 s.
  cc.on_ack(ack_at(2.0, 0.02, 1, 60));
  for (int i = 1; i <= 40; ++i) {
    cc.on_ack(ack_at(2.0 + 0.1 * i, 0.02, 1 + i, 60));
  }
  // 4 s into the epoch the window has climbed most of the way back toward
  // W_max (the per-ack step is (target - cwnd)/cwnd, so it trails the
  // cubic curve) without overshooting the old peak.
  EXPECT_GT(cc.cwnd(), after_cut + 5.0);
  EXPECT_LE(cc.cwnd(), 100.0 + 1.0);
}

TEST(BbrCcUnit, ModelEstimatorsTrackSamples) {
  BbrCc cc(10.0, 10000.0);
  EXPECT_STREQ(cc.phase(), "STARTUP");
  EXPECT_DOUBLE_EQ(cc.btlbw_pps(), 0.0);
  EXPECT_DOUBLE_EQ(cc.pacing_rate_pps(), 0.0);  // no model yet: unpaced

  CcAck a = ack_at(1.0, 0.04, 100, 20.0);
  a.delivered_at_send = 60;  // 40 packets over 0.04 s -> 1000 pps
  a.sent_time_s = 0.96;
  cc.on_ack(a);
  EXPECT_NEAR(cc.btlbw_pps(), 1000.0, 1e-9);
  EXPECT_NEAR(cc.rtprop_s(), 0.04, 1e-12);
  EXPECT_NEAR(cc.bdp_packets(), 40.0, 1e-6);
  // STARTUP paces at 2.885 * BtlBw and caps cwnd at 2.885 * BDP.
  EXPECT_NEAR(cc.pacing_rate_pps(), 2.885 * 1000.0, 1e-6);
  EXPECT_NEAR(cc.cwnd(), 2.885 * 40.0, 1e-6);
}

TEST(BbrCcUnit, FlatBandwidthExitsStartup) {
  BbrCc cc(10.0, 10000.0);
  // Feed rounds whose delivery rate stops growing: after three flat
  // rounds the full-pipe detector must leave STARTUP.
  std::int64_t delivered = 0;
  double now = 0.0;
  for (int round = 0; round < 12 && std::string(cc.phase()) == "STARTUP";
       ++round) {
    for (int i = 0; i < 10; ++i) {
      delivered += 4;
      now += 0.01;
      CcAck a = ack_at(now, 0.04, delivered, 10.0);
      a.delivered_at_send = delivered - 40;  // constant 1000 pps sample
      a.sent_time_s = now - 0.04;
      if (a.delivered_at_send < 0) a.delivered_at_send = 0;
      cc.on_ack(a);
    }
  }
  EXPECT_STRNE(cc.phase(), "STARTUP");
}

TEST(BbrCcUnit, LossInStartupDrainsAndTimeoutKeepsModel) {
  BbrCc cc(10.0, 10000.0);
  CcAck a = ack_at(1.0, 0.04, 100, 20.0);
  a.delivered_at_send = 60;
  a.sent_time_s = 0.96;
  cc.on_ack(a);
  double bw = cc.btlbw_pps();
  ASSERT_GT(bw, 0.0);

  cc.on_dupack_loss(1.5);
  EXPECT_STREQ(cc.phase(), "DRAIN");  // loss = pipe-full signal in STARTUP
  cc.on_timeout(2.0);
  EXPECT_DOUBLE_EQ(cc.btlbw_pps(), bw);  // RTO keeps the bandwidth model
}

// --- scenario-level behavior ----------------------------------------------

double solo_goodput(CcAlgo cc, double mbps, int buf, double rtt_s,
                    double dur) {
  Dumbbell d(link(mbps, buf, dur));
  FlowSpec s;
  s.base_rtt_s = rtt_s;
  s.cc = cc;
  d.add_flow(s);
  return d.run().flows[0].goodput_mbps;
}

TEST(CcScenarios, CubicFillsThePipeAtLeastAsWellAsReno) {
  double reno = solo_goodput(CcAlgo::kNewReno, 40, 100, 0.04, 20);
  double cubic = solo_goodput(CcAlgo::kCubic, 40, 100, 0.04, 20);
  EXPECT_GE(cubic, 0.95 * reno);
  EXPECT_GE(cubic, 0.8 * 40.0);
}

TEST(CcScenarios, BbrBoundsDeepBufferQueueRenoBloatsIt) {
  // 5x-BDP buffer: a loss-based flow fills most of it before each cut
  // (bufferbloat: mean RTT several times the floor), while BBR's 2x-BDP
  // inflight cap bounds the standing queue to about one BDP, keeping mean
  // RTT near 2x the 50 ms floor.
  auto run = [](CcAlgo cc) {
    Dumbbell d(link(30, 625, 20));  // BDP at 50 ms rtt = 125 packets
    FlowSpec s;
    s.base_rtt_s = 0.05;
    s.cc = cc;
    d.add_flow(s);
    return d.run().flows[0];
  };
  FlowResult reno = run(CcAlgo::kNewReno);
  FlowResult bbr = run(CcAlgo::kBbr);
  EXPECT_GT(reno.mean_rtt_ms, 130.0);       // bufferbloated
  EXPECT_LT(bbr.mean_rtt_ms, 120.0);        // model-bounded queue
  EXPECT_LT(bbr.mean_rtt_ms, 0.7 * reno.mean_rtt_ms);
  EXPECT_GE(bbr.goodput_mbps, 0.8 * 30.0);
}

// --- AccessInterdomain two-hop scenario -----------------------------------

TEST(AccessInterdomain, ConstrainedAccessDropsOnlyThere) {
  AccessInterdomain::Params p;
  p.interdomain_mbps = 500.0;
  p.interdomain_buffer_packets = 1000;
  p.access_mbps = 20.0;
  p.access_buffer_packets = 50;
  p.duration_s = 10.0;
  AccessInterdomain net(p);
  net.add_flow(full_trace_flow(0.03), FlowPath::kServerToClient);
  AiResult r = net.run();
  EXPECT_GT(r.access_drops, 0);
  EXPECT_EQ(r.interdomain_drops, 0);
  EXPECT_GE(r.flows[0].goodput_mbps, 0.7 * 20.0);
  EXPECT_LE(r.flows[0].goodput_mbps, 20.0);
}

TEST(AccessInterdomain, ConstrainedInterdomainDropsOnlyThere) {
  AccessInterdomain::Params p;
  p.interdomain_mbps = 30.0;
  p.interdomain_buffer_packets = 100;
  p.access_mbps = 100.0;
  p.access_buffer_packets = 1000;
  p.duration_s = 10.0;
  AccessInterdomain net(p);
  net.add_flow(full_trace_flow(0.03), FlowPath::kServerToClient);
  net.add_flow(full_trace_flow(0.04), FlowPath::kCrossInterdomain);
  net.add_flow(full_trace_flow(0.05), FlowPath::kCrossInterdomain);
  AiResult r = net.run();
  EXPECT_GT(r.interdomain_drops, 0);
  EXPECT_EQ(r.access_drops, 0);
  // The test flow shares the 30 Mbps hop with two cross flows.
  EXPECT_LT(r.flows[0].goodput_mbps, 25.0);
}

TEST(AccessInterdomain, PathsTouchExactlyTheirQueues) {
  AccessInterdomain::Params p;
  p.duration_s = 5.0;
  AccessInterdomain net(p);
  // A local-access flow never crosses the interdomain queue...
  net.add_flow(full_trace_flow(0.02), FlowPath::kLocalAccess);
  AiResult local_only = net.run();
  EXPECT_EQ(local_only.interdomain_delivered, 0);
  EXPECT_GT(local_only.access_delivered, 0);

  // ...and a cross flow never touches the access queue.
  AccessInterdomain net2(p);
  net2.add_flow(full_trace_flow(0.02), FlowPath::kCrossInterdomain);
  AiResult cross_only = net2.run();
  EXPECT_GT(cross_only.interdomain_delivered, 0);
  EXPECT_EQ(cross_only.access_delivered, 0);
}

// --- trace downsampling ---------------------------------------------------

TEST(TraceDownsampling, BoundedAndSubsetOfFullTrace) {
  auto run = [](std::size_t cap) {
    Dumbbell d(link(50, 400, 20));
    FlowSpec s;
    s.base_rtt_s = 0.03;
    s.max_trace_samples = cap;
    d.add_flow(s);
    return d.run().flows[0].stats;
  };
  TcpStats full = run(0);
  TcpStats capped = run(64);

  ASSERT_GT(full.ack_trace.size(), 64u);
  EXPECT_LE(capped.ack_trace.size(), 64u);
  EXPECT_LE(capped.rtt_samples_ms.size(), 64u);
  EXPECT_EQ(capped.rtt_samples_ms.size(), capped.rtt_sample_times_s.size());
  // Counters are unaffected by recording policy.
  EXPECT_EQ(capped.packets_sent, full.packets_sent);
  EXPECT_EQ(capped.packets_acked, full.packets_acked);

  // Every retained ack-trace point exists in the full trace (pure
  // downsampling, no resampled values), in the same order.
  std::set<std::pair<double, std::int64_t>> full_points(
      full.ack_trace.begin(), full.ack_trace.end());
  double prev = -1.0;
  for (const auto& pt : capped.ack_trace) {
    EXPECT_TRUE(full_points.count(pt)) << "synthesized trace point";
    EXPECT_GT(pt.first, prev);
    prev = pt.first;
  }

  // Goodput computed from the downsampled trace stays close to the truth.
  double g_full = goodput_over_mbps(full, 1500, 0.0, 20.0);
  double g_capped = goodput_over_mbps(capped, 1500, 0.0, 20.0);
  EXPECT_NEAR(g_capped, g_full, 0.05 * g_full);
}

TEST(TraceDownsampling, DeterministicAcrossRuns) {
  auto run = [] {
    Dumbbell d(link(30, 200, 15));
    FlowSpec s;
    s.base_rtt_s = 0.04;
    s.max_trace_samples = 128;
    d.add_flow(s);
    return d.run().flows[0].stats;
  };
  TcpStats a = run();
  TcpStats b = run();
  EXPECT_EQ(stats_fingerprint(a), stats_fingerprint(b));
  EXPECT_EQ(a.rtt_sample_times_s, b.rtt_sample_times_s);
}

}  // namespace
}  // namespace netcong::sim::packet
