#include "gen/cities.h"

#include <unordered_map>

namespace netcong::gen {

namespace {
topo::City make(const char* name, const char* code, double lat, double lon,
                int utc, double weight) {
  topo::City c;
  c.name = name;
  c.code = code;
  c.lat = lat;
  c.lon = lon;
  c.utc_offset_hours = utc;
  c.population_weight = weight;
  return c;
}
}  // namespace

const std::vector<topo::City>& us_metros() {
  static const std::vector<topo::City> metros = {
      make("NewYork", "nyc", 40.71, -74.01, -5, 20.0),
      make("LosAngeles", "lax", 34.05, -118.24, -8, 13.0),
      make("Chicago", "chi", 41.88, -87.63, -6, 9.5),
      make("Dallas", "dfw", 32.78, -96.80, -6, 7.2),
      make("Houston", "hou", 29.76, -95.37, -6, 6.6),
      make("WashingtonDC", "was", 38.91, -77.04, -5, 6.2),
      make("Miami", "mia", 25.76, -80.19, -5, 6.1),
      make("Philadelphia", "phl", 39.95, -75.17, -5, 6.0),
      make("Atlanta", "atl", 33.75, -84.39, -5, 5.9),
      make("Boston", "bos", 42.36, -71.06, -5, 4.9),
      make("Phoenix", "phx", 33.45, -112.07, -7, 4.8),
      make("SanFrancisco", "sfo", 37.77, -122.42, -8, 4.7),
      make("Seattle", "sea", 47.61, -122.33, -8, 4.0),
      make("Minneapolis", "msp", 44.98, -93.27, -6, 3.6),
      make("SanDiego", "san", 32.72, -117.16, -8, 3.3),
      make("Denver", "den", 39.74, -104.99, -7, 2.9),
      make("SanJose", "sjc", 37.34, -121.89, -8, 2.0),
      make("KansasCity", "mci", 39.10, -94.58, -6, 2.1),
      make("SaltLakeCity", "slc", 40.76, -111.89, -7, 1.2),
      make("NewOrleans", "msy", 29.95, -90.07, -6, 1.3),
  };
  return metros;
}

std::size_t metro_index_for_site(const std::string& site_code) {
  // Ark site codes are airport-style; map each Table 3 site to the nearest
  // metro in our list.
  static const std::unordered_map<std::string, const char*> site_to_metro = {
      {"bed-us", "bos"},  {"bed3-us", "bos"}, {"bos5-us", "bos"},
      {"mry-us", "sjc"},  {"wvi-us", "sjc"},  {"atl2-us", "atl"},
      {"wbu2-us", "den"}, {"mnz-us", "was"},  {"ith-us", "nyc"},
      {"lex-us", "chi"},  {"san4-us", "san"}, {"san2-us", "san"},
      {"san6-us", "san"}, {"msy-us", "msy"},  {"aza-us", "phx"},
      {"igx-us", "mia"},
  };
  auto it = site_to_metro.find(site_code);
  if (it == site_to_metro.end()) return 0;
  const auto& metros = us_metros();
  for (std::size_t i = 0; i < metros.size(); ++i) {
    if (metros[i].code == it->second) return i;
  }
  return 0;
}

}  // namespace netcong::gen
