file(REMOVE_RECURSE
  "CMakeFiles/netcong_gen.dir/address_alloc.cpp.o"
  "CMakeFiles/netcong_gen.dir/address_alloc.cpp.o.d"
  "CMakeFiles/netcong_gen.dir/cities.cpp.o"
  "CMakeFiles/netcong_gen.dir/cities.cpp.o.d"
  "CMakeFiles/netcong_gen.dir/paper_data.cpp.o"
  "CMakeFiles/netcong_gen.dir/paper_data.cpp.o.d"
  "CMakeFiles/netcong_gen.dir/profiles.cpp.o"
  "CMakeFiles/netcong_gen.dir/profiles.cpp.o.d"
  "CMakeFiles/netcong_gen.dir/workload.cpp.o"
  "CMakeFiles/netcong_gen.dir/workload.cpp.o.d"
  "CMakeFiles/netcong_gen.dir/world.cpp.o"
  "CMakeFiles/netcong_gen.dir/world.cpp.o.d"
  "libnetcong_gen.a"
  "libnetcong_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcong_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
