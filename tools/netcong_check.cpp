// netcong_check: the property-based testing driver. Runs the registered
// property families (gen / meta / diff — see src/check/properties.h) at a
// configurable iteration budget, prints one line per property, and on
// failure prints the shrunk counterexample plus the NETCONG_PBT_SEED line
// that reproduces exactly that case.
//
//   netcong_check --list                 # what can run
//   netcong_check                        # everything, default budgets
//   netcong_check --family diff          # one family
//   netcong_check --property gen.addresses_unique --iterations 200
//   NETCONG_PBT_SEED=0x... netcong_check --property gen.addresses_unique
//   netcong_check --out report.json      # machine-readable summary

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/properties.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

using namespace netcong;

int usage(std::FILE* out) {
  std::fputs(
      "usage: netcong_check [--list] [--family gen|meta|diff]\n"
      "                     [--property NAME] [--iterations N] [--seed N]\n"
      "                     [--out FILE.json]\n"
      "\n"
      "Runs the netcong property suite. With no filters, every registered\n"
      "property runs at its default iteration budget. NETCONG_PBT_SEED\n"
      "re-runs exactly one case (the repro line printed on failure);\n"
      "NETCONG_PBT_ITERS overrides every budget.\n",
      out);
  return out == stdout ? 0 : 2;
}

int list_properties() {
  for (const check::Property& p : check::all_properties()) {
    std::printf("%-32s %4d iters  %s\n", p.name.c_str(),
                p.default_iterations, p.summary.c_str());
  }
  return 0;
}

struct Options {
  bool list = false;
  std::string family;
  std::string property;
  int iterations = 0;  // 0 = per-property default
  std::uint64_t seed = 42;
  bool seed_set = false;
  std::string out_path;
};

bool parse(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "netcong_check: %s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (a == "--list") {
      opts.list = true;
    } else if (a == "--family") {
      const char* v = value("--family");
      if (!v) return false;
      opts.family = v;
    } else if (a == "--property") {
      const char* v = value("--property");
      if (!v) return false;
      opts.property = v;
    } else if (a == "--iterations") {
      const char* v = value("--iterations");
      if (!v) return false;
      opts.iterations = std::atoi(v);
      if (opts.iterations <= 0) {
        std::fprintf(stderr, "netcong_check: bad --iterations '%s'\n", v);
        return false;
      }
    } else if (a == "--seed") {
      const char* v = value("--seed");
      if (!v) return false;
      opts.seed = std::strtoull(v, nullptr, 0);
      opts.seed_set = true;
    } else if (a == "--out") {
      const char* v = value("--out");
      if (!v) return false;
      opts.out_path = v;
    } else {
      std::fprintf(stderr, "netcong_check: unknown option '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

std::string json_report(const std::vector<util::pbt::CheckResult>& results) {
  std::string out = "{\n  \"properties\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out += "    {\"name\": " + util::json_quote(r.name) +
           ", \"ok\": " + (r.ok ? "true" : "false") +
           util::format(", \"iterations\": %d", r.iterations_run);
    if (!r.ok) {
      out += util::format(", \"seed\": \"0x%016llx\"",
                          static_cast<unsigned long long>(r.failing_seed));
      out += ", \"counterexample\": " + util::json_quote(r.counterexample);
      out += ", \"failure\": " + util::json_quote(r.failure);
    }
    out += "}";
    if (i + 1 < results.size()) out += ",";
    out += "\n";
  }
  std::size_t failed = 0;
  for (const auto& r : results) failed += r.ok ? 0 : 1;
  out += util::format("  ],\n  \"total\": %zu,\n  \"failed\": %zu\n}\n",
                      results.size(), failed);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse(argc, argv, opts)) {
    usage(stderr);
    return 2;
  }
  if (opts.list) return list_properties();

  if (!opts.property.empty() && check::find_property(opts.property) == nullptr) {
    std::fprintf(stderr, "netcong_check: unknown property '%s'\n",
                 opts.property.c_str());
    return 2;
  }
  if (!opts.family.empty()) {
    bool known = false;
    for (const std::string& f : check::families()) known = known || f == opts.family;
    if (!known) {
      std::fprintf(stderr, "netcong_check: unknown family '%s'\n",
                   opts.family.c_str());
      return 2;
    }
  }

  std::vector<util::pbt::CheckResult> results;
  bool all_ok = true;
  for (const check::Property& p : check::all_properties()) {
    if (!opts.property.empty() && p.name != opts.property) continue;
    if (!opts.family.empty() && p.family != opts.family) continue;

    util::pbt::Config cfg;
    cfg.iterations = opts.iterations;
    cfg.seed = opts.seed;
    util::pbt::CheckResult r = check::run_property(p, cfg);
    results.push_back(r);
    if (r.ok) {
      std::printf("ok      %-32s (%d cases)\n", p.name.c_str(),
                  r.iterations_run);
    } else {
      all_ok = false;
      std::printf("FAILED  %-32s\n%s\n", p.name.c_str(), r.report.c_str());
    }
    std::fflush(stdout);
  }
  if (results.empty()) {
    std::fprintf(stderr, "netcong_check: nothing matched the filters\n");
    return 2;
  }

  if (!opts.out_path.empty()) {
    std::FILE* f = std::fopen(opts.out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "netcong_check: cannot write '%s'\n",
                   opts.out_path.c_str());
      return 2;
    }
    std::string report = json_report(results);
    std::fwrite(report.data(), 1, report.size(), f);
    std::fclose(f);
  }

  std::size_t failed = 0;
  for (const auto& r : results) failed += r.ok ? 0 : 1;
  std::printf("%zu properties, %zu failed\n", results.size(), failed);
  return all_ok ? 0 : 1;
}
