# Empty dependencies file for netcong_route.
# This may be replaced when dependencies are built.
