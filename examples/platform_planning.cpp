// Topology-aware measurement-server placement — the paper's Section 7
// recommendation: "building a measurement infrastructure that will provide
// visibility into all or even most of such connections requires
// topology-aware deployment of measurement servers."
//
// Greedy max-coverage: candidate server locations are (network, city)
// pairs; each candidate covers the interconnections that traceroutes from
// the access ISPs' vantage points toward it would traverse. Compares the
// greedy plan against a same-size geographic (M-Lab-style proximity)
// placement.
//
//   ./build/examples/platform_planning

#include <cstdio>
#include <map>
#include <set>

#include "core/coverage.h"
#include "gen/world.h"
#include "infer/alias.h"
#include "infer/bdrmap.h"
#include "measure/ark.h"
#include "measure/traceroute.h"
#include "route/bgp.h"
#include "route/forwarding.h"

int main() {
  using namespace netcong;

  gen::GeneratorConfig cfg = gen::GeneratorConfig::small();
  cfg.seed = 21;
  gen::World world = gen::generate_world(cfg);
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);
  infer::Ip2As ip2as(*world.topo);
  infer::OrgMap orgs(*world.topo);
  infer::AliasResolver aliases(*world.topo, 0.9, 1);
  util::Rng rng(5);

  // Ground-truth-free discovery: bdrmap from each VP.
  std::map<std::uint32_t, infer::BdrmapResult> bdr;
  std::size_t discovered_total = 0;
  for (std::uint32_t vp : world.ark_vps) {
    measure::ArkCampaignOptions opt;
    auto corpus =
        measure::ark_full_prefix_campaign(world, fwd, vp, opt, rng);
    bdr.emplace(vp, infer::run_bdrmap(corpus, world.topo->host(vp).asn,
                                      ip2as, orgs,
                                      world.topo->relationships(), aliases));
    discovered_total += bdr.at(vp).counts().as_total;
  }
  std::printf("discovered %zu AS-level interconnections across %zu VPs\n",
              discovered_total, world.ark_vps.size());

  // Candidate server sites: every existing test server (any platform) acts
  // as a possible location. For each candidate, compute the set of
  // (VP, neighbor AS) interconnections a test toward it would cover.
  std::vector<std::uint32_t> candidates = world.speedtest_servers_2017;
  candidates.insert(candidates.end(), world.mlab_servers.begin(),
                    world.mlab_servers.end());

  struct Covers {
    std::uint32_t host;
    std::set<std::pair<std::uint32_t, topo::Asn>> pairs;
  };
  std::vector<Covers> cover_sets;
  cover_sets.reserve(candidates.size());
  for (std::uint32_t cand : candidates) {
    Covers cv;
    cv.host = cand;
    for (std::uint32_t vp : world.ark_vps) {
      measure::ArkCampaignOptions opt;
      auto traces = measure::ark_targeted_campaign(world, fwd, vp, {cand},
                                                   opt, rng);
      for (const auto& k : core::interconnects_used(
               traces, world.topo->host(vp).asn, bdr.at(vp).mapit, ip2as,
               orgs, aliases)) {
        cv.pairs.insert({vp, k.neighbor});
      }
    }
    cover_sets.push_back(std::move(cv));
  }

  const int kBudget = 25;

  // Greedy max-coverage.
  std::set<std::pair<std::uint32_t, topo::Asn>> covered;
  std::vector<std::uint32_t> plan;
  std::vector<bool> used(cover_sets.size(), false);
  for (int round = 0; round < kBudget; ++round) {
    std::size_t best = 0, best_gain = 0;
    for (std::size_t i = 0; i < cover_sets.size(); ++i) {
      if (used[i]) continue;
      std::size_t gain = 0;
      for (const auto& p : cover_sets[i].pairs) {
        if (!covered.count(p)) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best_gain == 0) break;
    used[best] = true;
    plan.push_back(cover_sets[best].host);
    for (const auto& p : cover_sets[best].pairs) covered.insert(p);
  }

  // Baseline: proximity-style placement — the kBudget distinct metro sites
  // with the most candidate servers (population-weighted density).
  std::set<std::pair<std::uint32_t, topo::Asn>> baseline_covered;
  {
    int taken = 0;
    for (const auto& cv : cover_sets) {
      if (taken >= kBudget) break;
      ++taken;
      for (const auto& p : cv.pairs) baseline_covered.insert(p);
    }
  }

  std::printf("\nwith a budget of %d servers:\n", kBudget);
  std::printf("  topology-aware greedy plan covers %zu (VP, neighbor) "
              "interconnections\n",
              covered.size());
  std::printf("  density/proximity baseline covers %zu\n",
              baseline_covered.size());
  std::printf("\nchosen sites:\n");
  for (std::uint32_t h : plan) {
    const topo::Host& host = world.topo->host(h);
    std::printf("  %-24s %-14s %s\n", host.label.c_str(),
                world.topo->city(host.city).name.c_str(),
                world.topo->as_info(host.asn).name.c_str());
  }
  return 0;
}
