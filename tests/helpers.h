#pragma once

// Shared test fixtures: a hand-built miniature topology with full control
// over every entity (for exact assertions), and a cached generated world
// (for integration-style tests).

#include <map>
#include <string>
#include <vector>

#include "gen/world.h"
#include "topo/topology.h"

namespace netcong::test {

// Builds small topologies by hand. Cities 0..4 are NYC/CHI/LAX/ATL/DFW.
class HandTopo {
 public:
  HandTopo();

  topo::Topology& topo() { return topo_; }
  const topo::Topology& topo() const { return topo_; }

  topo::CityId city(int i) const { return cities_.at(static_cast<std::size_t>(i)); }

  // Creates an AS with a backbone router (plus internal mesh) in each city,
  // an /16 announced block, and hosting/access routers.
  void add_as(topo::Asn asn, const std::string& name, topo::AsType type,
              const std::vector<int>& city_indices,
              const std::string& org_name = "");

  // Declares the relationship AND creates one interdomain link per shared
  // city index given. Returns created link ids.
  std::vector<topo::LinkId> connect(topo::Asn a, topo::Asn b,
                                    topo::RelType rel_a_to_b,
                                    const std::vector<int>& city_indices,
                                    bool number_from_b = true,
                                    double capacity_mbps = 10000.0);

  // Adds a host of the given kind in the AS at city index.
  std::uint32_t add_host(topo::Asn asn, int city_index, topo::HostKind kind,
                         const std::string& label = "host");

  topo::RouterId backbone(topo::Asn asn, int city_index) const;

 private:
  topo::Topology topo_;
  std::vector<topo::CityId> cities_;
  std::uint32_t next_block_ = 16;  // /16 index allocator (16.0.0.0 upward)
  struct AsPools {
    std::uint32_t infra_next = 0;
    std::uint32_t host_next = 0;
    topo::Prefix block;
  };
  std::map<topo::Asn, AsPools> pools_;

  topo::IpAddr next_infra(topo::Asn asn);
  topo::IpAddr next_host_addr(topo::Asn asn);
};

// A lazily generated, process-cached small world (seed 7).
const gen::World& small_world();

// A lazily generated, process-cached tiny world (seed 7).
const gen::World& tiny_world();

}  // namespace netcong::test
