// The anomaly detector (infer/anomaly): change detection over synthetic
// campaigns with known shift structure — RTT onsets, appearing and
// vanishing inter-AS crossings, the single-bin degenerate case — plus the
// scoring pass in core/anomaly_eval.

#include <gtest/gtest.h>

#include <vector>

#include "core/anomaly_eval.h"
#include "infer/anomaly.h"
#include "topo/ip.h"

namespace netcong::infer {
namespace {

// Two /8 blocks owned by AS 100 and AS 200; crossings between them are
// inter-AS by construction.
Ip2As two_as_map() {
  std::vector<std::pair<topo::Prefix, topo::Asn>> announced = {
      {topo::Prefix(topo::IpAddr{10u << 24}, 8), 100},
      {topo::Prefix(topo::IpAddr{20u << 24}, 8), 200},
  };
  return Ip2As(announced, {});
}

topo::IpAddr as100(std::uint32_t n) { return topo::IpAddr{(10u << 24) + n}; }
topo::IpAddr as200(std::uint32_t n) { return topo::IpAddr{(20u << 24) + n}; }

measure::NdtRecord test_at(double t, double rtt_ms) {
  measure::NdtRecord r;
  r.utc_time_hours = t;
  r.flow_rtt_ms = rtt_ms;
  r.download_mbps = 10.0;
  return r;
}

// A trace crossing from near (AS 100) to far (AS 200) at adjacent TTLs.
measure::TracerouteRecord trace_at(double t, topo::IpAddr near_hop,
                                   topo::IpAddr far_hop) {
  measure::TracerouteRecord tr;
  tr.utc_time_hours = t;
  tr.hops.push_back({1, true, as100(1), 1.0, ""});
  tr.hops.push_back({2, true, near_hop, 2.0, ""});
  tr.hops.push_back({3, true, far_hop, 3.0, ""});
  return tr;
}

TEST(AnomalyDetector, SingleBinIsInsufficientNotFatal) {
  measure::CampaignResult result;
  for (int i = 0; i < 5; ++i) {
    result.tests.push_back(test_at(1.0 + i * 0.1, 50.0));
  }
  Ip2As ip2as = two_as_map();
  AnomalyReport report = detect_anomalies(result, ip2as);
  EXPECT_TRUE(report.insufficient);
  EXPECT_EQ(report.bins, 1u);
  EXPECT_TRUE(report.alarms.empty());
  EXPECT_TRUE(report.epochs.empty());
  EXPECT_EQ(report.tests_used, 5u);
}

TEST(AnomalyDetector, EmptyCampaignIsInsufficient) {
  measure::CampaignResult result;
  Ip2As ip2as = two_as_map();
  AnomalyReport report = detect_anomalies(result, ip2as);
  EXPECT_TRUE(report.insufficient);
  EXPECT_EQ(report.bins, 0u);
}

TEST(AnomalyDetector, DetectsRttShiftNearTrueEpoch) {
  // Ten days of tests, 4 per 6h bin; RTT steps 50 -> 90 ms at hour 144.
  const double epoch = 144.0;
  measure::CampaignResult result;
  for (int h = 0; h < 240; h += 2) {
    double rtt = (h < epoch ? 50.0 : 90.0) + 0.1 * (h % 6);
    result.tests.push_back(test_at(h + 0.5, rtt));
  }
  Ip2As ip2as = two_as_map();
  AnomalyReport report = detect_anomalies(result, ip2as);
  ASSERT_FALSE(report.insufficient);
  bool rtt_alarm = false;
  for (const AnomalyFinding& f : report.alarms) {
    if (f.kind == AnomalyKind::kRttShift) {
      rtt_alarm = true;
      EXPECT_NEAR(f.onset_hours, epoch, 24.0);
    }
  }
  EXPECT_TRUE(rtt_alarm);
  ASSERT_FALSE(report.epochs.empty());

  core::AnomalyGroundTruth truth;
  truth.epochs.push_back(epoch);
  core::AnomalyScore score = core::score_anomalies(report, truth);
  EXPECT_EQ(score.epochs_matched, 1u);
  EXPECT_GT(score.epoch_f1, 0.0);
}

TEST(AnomalyDetector, QuietCampaignRaisesNoEpochs) {
  measure::CampaignResult result;
  for (int h = 0; h < 240; h += 2) {
    // Stable diurnal pattern, no shift.
    double rtt = 50.0 + 5.0 * ((h % 24) / 24.0);
    result.tests.push_back(test_at(h + 0.5, rtt));
    result.traceroutes.push_back(trace_at(h + 0.5, as100(7), as200(7)));
  }
  Ip2As ip2as = two_as_map();
  AnomalyReport report = detect_anomalies(result, ip2as);
  ASSERT_FALSE(report.insufficient);
  EXPECT_TRUE(report.epochs.empty()) << report.alarms.size() << " alarms";
  EXPECT_TRUE(report.withdrawn.empty());
}

TEST(AnomalyDetector, FlagsWithdrawnAndNewCrossing) {
  // The (as100(7), as200(7)) crossing carries all traffic until hour 144,
  // then is replaced by (as100(8), as200(8)).
  const double epoch = 144.0;
  measure::CampaignResult result;
  for (int h = 0; h < 240; h += 2) {
    if (h < epoch) {
      result.traceroutes.push_back(trace_at(h + 0.5, as100(7), as200(7)));
    } else {
      result.traceroutes.push_back(trace_at(h + 0.5, as100(8), as200(8)));
    }
  }
  Ip2As ip2as = two_as_map();
  AnomalyReport report = detect_anomalies(result, ip2as);
  ASSERT_FALSE(report.insufficient);

  bool withdrawn = false;
  bool appeared = false;
  for (const AnomalyFinding& f : report.alarms) {
    if (f.kind == AnomalyKind::kWithdrawnCrossing &&
        f.near_addr.value == as100(7).value &&
        f.far_addr.value == as200(7).value) {
      withdrawn = true;
      EXPECT_NEAR(f.onset_hours, epoch, 6.0);
      EXPECT_EQ(f.near_asn, 100u);
      EXPECT_EQ(f.far_asn, 200u);
    }
    if (f.kind == AnomalyKind::kNewCrossing &&
        f.near_addr.value == as100(8).value) {
      appeared = true;
      EXPECT_NEAR(f.onset_hours, epoch, 6.0);
    }
  }
  EXPECT_TRUE(withdrawn);
  EXPECT_TRUE(appeared);
  ASSERT_EQ(report.withdrawn.size(), 1u);

  core::AnomalyGroundTruth truth;
  truth.epochs.push_back(epoch);
  truth.withdrawn.push_back({as100(7), as200(7)});
  core::AnomalyScore score = core::score_anomalies(report, truth);
  EXPECT_EQ(score.epochs_matched, 1u);
  EXPECT_EQ(score.withdrawn_matched, 1u);
  EXPECT_EQ(score.withdrawn_recall, 1.0);
}

TEST(AnomalyDetector, AccountingCoversEveryRecord) {
  measure::CampaignResult result;
  for (int h = 0; h < 48; h += 2) {
    result.tests.push_back(test_at(h + 0.5, 50.0));
    result.traceroutes.push_back(trace_at(h + 0.5, as100(7), as200(7)));
  }
  // Records the detector must skip: a failed test, a webstats-less test,
  // and a trace with no usable crossing.
  measure::NdtRecord failed = test_at(1.0, 0.0);
  failed.status = measure::NdtStatus::kAborted;
  result.tests.push_back(failed);
  measure::NdtRecord no_stats = test_at(1.0, 0.0);
  no_stats.has_webstats = false;
  result.tests.push_back(no_stats);
  measure::TracerouteRecord lonely;
  lonely.utc_time_hours = 1.0;
  lonely.hops.push_back({1, true, as100(1), 1.0, ""});
  result.traceroutes.push_back(lonely);

  Ip2As ip2as = two_as_map();
  AnomalyReport report = detect_anomalies(result, ip2as);
  EXPECT_EQ(report.tests_used + report.tests_skipped, result.tests.size());
  EXPECT_EQ(report.tests_skipped, 2u);
  EXPECT_EQ(report.traces_used + report.traces_skipped,
            result.traceroutes.size());
  EXPECT_EQ(report.traces_skipped, 1u);
}

TEST(AnomalyScore, GreedyEpochMatchingWithinTolerance) {
  AnomalyReport report;
  report.epochs = {100.0, 200.0};
  core::AnomalyGroundTruth truth;
  truth.epochs = {110.0, 400.0};
  core::AnomalyScore score = core::score_anomalies(report, truth, 24.0);
  EXPECT_EQ(score.epochs_matched, 1u);
  EXPECT_DOUBLE_EQ(score.epoch_precision, 0.5);
  EXPECT_DOUBLE_EQ(score.epoch_recall, 0.5);

  // The no-detection baseline scores zero everywhere.
  AnomalyReport empty;
  core::AnomalyScore none = core::score_anomalies(empty, truth, 24.0);
  EXPECT_EQ(none.epochs_matched, 0u);
  EXPECT_DOUBLE_EQ(none.epoch_f1, 0.0);
}

}  // namespace
}  // namespace netcong::infer
