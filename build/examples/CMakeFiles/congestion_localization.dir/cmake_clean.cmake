file(REMOVE_RECURSE
  "CMakeFiles/congestion_localization.dir/congestion_localization.cpp.o"
  "CMakeFiles/congestion_localization.dir/congestion_localization.cpp.o.d"
  "congestion_localization"
  "congestion_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
