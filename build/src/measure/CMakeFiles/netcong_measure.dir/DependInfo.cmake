
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/alexa.cpp" "src/measure/CMakeFiles/netcong_measure.dir/alexa.cpp.o" "gcc" "src/measure/CMakeFiles/netcong_measure.dir/alexa.cpp.o.d"
  "/root/repo/src/measure/ark.cpp" "src/measure/CMakeFiles/netcong_measure.dir/ark.cpp.o" "gcc" "src/measure/CMakeFiles/netcong_measure.dir/ark.cpp.o.d"
  "/root/repo/src/measure/matching.cpp" "src/measure/CMakeFiles/netcong_measure.dir/matching.cpp.o" "gcc" "src/measure/CMakeFiles/netcong_measure.dir/matching.cpp.o.d"
  "/root/repo/src/measure/ndt.cpp" "src/measure/CMakeFiles/netcong_measure.dir/ndt.cpp.o" "gcc" "src/measure/CMakeFiles/netcong_measure.dir/ndt.cpp.o.d"
  "/root/repo/src/measure/platform.cpp" "src/measure/CMakeFiles/netcong_measure.dir/platform.cpp.o" "gcc" "src/measure/CMakeFiles/netcong_measure.dir/platform.cpp.o.d"
  "/root/repo/src/measure/traceroute.cpp" "src/measure/CMakeFiles/netcong_measure.dir/traceroute.cpp.o" "gcc" "src/measure/CMakeFiles/netcong_measure.dir/traceroute.cpp.o.d"
  "/root/repo/src/measure/tslp.cpp" "src/measure/CMakeFiles/netcong_measure.dir/tslp.cpp.o" "gcc" "src/measure/CMakeFiles/netcong_measure.dir/tslp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/netcong_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netcong_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/netcong_route.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netcong_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netcong_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/netcong_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
