#pragma once

// Flow-level TCP throughput estimation for a bulk transfer along a router
// path. Combines three constraints, mirroring what bounds a real NDT test:
//
//  1. per-link available bandwidth: at each link the flow receives the
//     larger of the residual capacity and a max-min fair share against the
//     estimated number of competing background flows;
//  2. the TCP steady-state response function (Padhye et al. [33] in the
//     paper): rate ~ MSS / (RTT * sqrt(2p/3)) with path RTT including
//     queueing delay at busy links — this yields the well-known inverse
//     relationship between throughput and latency;
//  3. the client's service tier and home-network quality (paper Section 6.1:
//     service-plan variance and Wi-Fi interference).
//
// The estimate also reports retransmission counts and flow RTT, the
// auxiliary metrics the M-Lab reports analyzed.

#include <optional>

#include "route/path.h"
#include "sim/traffic.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace netcong::sim {

struct ThroughputEstimate {
  bool valid = false;
  double goodput_mbps = 0.0;
  double flow_rtt_ms = 0.0;   // base RTT + queueing
  double loss_rate = 0.0;     // max along the path
  double retrans_rate = 0.0;  // fraction of segments retransmitted
  int congestion_signals = 0;  // multiplicative cwnd reductions in the test
  // The most constraining network link (invalid when the client access link
  // or the TCP response function was the binding constraint).
  topo::LinkId bottleneck;
  bool access_limited = false;  // client tier/home was the binding constraint
};

class ThroughputModel {
 public:
  struct Params {
    double mss_bytes = 1448.0;
    double test_duration_s = 10.0;  // NDT-style 10s transfer
    // Multiplicative lognormal measurement noise (client CPU, browser, OS).
    double measurement_noise_sigma = 0.08;
    // Cap imposed by the server's own uplink.
    double server_cap_mbps = 1000.0;
  };

  ThroughputModel(const topo::Topology& topo, const TrafficModel& traffic)
      : ThroughputModel(topo, traffic, Params{}) {}
  ThroughputModel(const topo::Topology& topo, const TrafficModel& traffic,
                  Params params);

  // Downstream estimate: data flows server -> client along `path` (a path
  // computed from the server toward the client). utc_hour sets every link's
  // local time. Randomness: utilization noise + measurement noise.
  ThroughputEstimate estimate(const route::RouterPath& path,
                              const topo::Host& client,
                              const topo::Host& server, double utc_hour,
                              util::Rng& rng) const;

  const Params& params() const { return params_; }

 private:
  const topo::Topology* topo_;
  const TrafficModel* traffic_;
  Params params_;
};

// Padhye-style steady-state TCP rate in Mbps. rtt_ms > 0, loss in (0,1).
double tcp_response_mbps(double mss_bytes, double rtt_ms, double loss_rate);

}  // namespace netcong::sim
