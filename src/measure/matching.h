#pragma once

// NDT <-> Paris traceroute association (paper Section 4.1). The platform
// does not link the two records, so analysis must match each NDT test to a
// traceroute toward the same client within a time window — "the first
// traceroute from the server to that same client within a 10-minute window
// after the NDT test", optionally relaxed to either side.

#include <optional>
#include <vector>

#include "measure/ndt.h"
#include "measure/traceroute.h"

namespace netcong::measure {

struct MatchedTest {
  const NdtRecord* test = nullptr;
  const TracerouteRecord* traceroute = nullptr;  // null if unmatched
  // Why this test did or did not get a traceroute. Incomplete tests
  // (aborted/unserved/failed) are classified and excluded from matching
  // rather than diluting the Section 4.1 rate.
  enum class Outcome : std::uint8_t {
    kMatched = 0,
    kUnmatched,
    kExcludedIncomplete,
  };
  Outcome outcome = Outcome::kUnmatched;
};

struct MatchOptions {
  double window_minutes = 10.0;
  // If true, accept the nearest traceroute before OR after the test; if
  // false, only traceroutes after the test qualify.
  bool allow_before = false;
};

struct MatchStats {
  std::size_t total_tests = 0;  // every record seen, any status
  std::size_t eligible = 0;     // completed tests that entered matching
  std::size_t matched = 0;
  // Classified exclusions, by record status (total = eligible + these).
  std::size_t excluded_aborted = 0;
  std::size_t excluded_unserved = 0;
  std::size_t excluded_failed = 0;

  // The Section 4.1 matching rate: matched / tests-that-ran. For a clean
  // corpus eligible == total_tests, preserving the original semantics.
  double fraction() const {
    return eligible == 0 ? 0.0 : static_cast<double>(matched) / eligible;
  }
  // Effective sample coverage of the full attempted corpus.
  double coverage() const {
    return total_tests == 0 ? 0.0
                            : static_cast<double>(matched) / total_tests;
  }
  // "Attempted = eligible + classified-excluded" — no silent drops.
  bool accounted() const {
    return total_tests ==
           eligible + excluded_aborted + excluded_unserved + excluded_failed;
  }
};

// Matches tests to traceroutes; both inputs may be in any order. A given
// traceroute can match multiple tests (as in the real data), but each test
// gets at most one traceroute.
std::vector<MatchedTest> match_tests(
    const std::vector<NdtRecord>& tests,
    const std::vector<TracerouteRecord>& traceroutes,
    const topo::Topology& topo, const MatchOptions& options,
    MatchStats* stats = nullptr);

}  // namespace netcong::measure
