#pragma once

// Diurnal throughput analysis and M-Lab-style congestion inference (paper
// Figure 5 / Sections 3.1 and 6): group NDT tests by (server-side network,
// client ISP), bin by the client's local hour, and flag groups whose
// peak-hour throughput drops below off-peak by more than a threshold.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "gen/world.h"
#include "measure/ndt.h"
#include "stats/timeseries.h"

namespace netcong::measure {
struct NdtCorpus;
}  // namespace netcong::measure

namespace netcong::core {

struct DiurnalGroup {
  std::string source;  // server-side label, e.g. "GTT/Atlanta"
  std::string isp;     // client ISP
  stats::HourlySeries throughput;
  stats::HourlySeries rtt;
  stats::HourlySeries retrans;
  std::size_t tests = 0;
};

// Key selector: how tests are aggregated into groups.
struct GroupKey {
  std::string source;
  std::string isp;
  bool operator<(const GroupKey& o) const {
    if (source != o.source) return source < o.source;
    return isp < o.isp;
  }
  bool operator==(const GroupKey& o) const {
    return source == o.source && isp == o.isp;
  }
};

// Exclusion accounting for group building over a possibly degraded corpus:
// total = used + every classified exclusion, so the analysis can report its
// effective sample coverage next to its result.
struct DiurnalBuildStats {
  std::size_t total = 0;
  std::size_t used = 0;
  std::size_t incomplete = 0;          // aborted/unserved/failed records
  std::size_t invalid_throughput = 0;  // completed but download <= 0
  std::size_t unlabeled = 0;           // source/isp selector returned empty

  double coverage() const {
    return total == 0 ? 0.0 : static_cast<double>(used) / total;
  }
  bool accounted() const {
    return total == used + incomplete + invalid_throughput + unlabeled;
  }
};

// Builds diurnal groups; local hour is the client's local time (the axis
// in the paper's Figure 5). `source_of` labels each test's server
// (e.g. host-transit name + city), `isp_of` its client ISP; empty string
// skips the test. Records that never completed are excluded and counted.
std::map<GroupKey, DiurnalGroup> build_diurnal_groups(
    const std::vector<measure::NdtRecord>& tests, const gen::World& world,
    const std::function<std::string(const measure::NdtRecord&)>& source_of,
    const std::function<std::string(const measure::NdtRecord&)>& isp_of,
    DiurnalBuildStats* stats = nullptr);

// Columnar overload: streams the SoA corpus in bounded batches of
// `batch_size` rows (0 = a single batch), materializing only the scalar
// columns the selectors read — the truth paths never leave the pool.
// Produces groups identical to the record-vector overload.
std::map<GroupKey, DiurnalGroup> build_diurnal_groups(
    const measure::NdtCorpus& tests, const gen::World& world,
    const std::function<std::string(const measure::NdtRecord&)>& source_of,
    const std::function<std::string(const measure::NdtRecord&)>& isp_of,
    DiurnalBuildStats* stats = nullptr, std::size_t batch_size = 4096);

// Hours of day whose sample count falls below min_samples — the Section 6.1
// sparsity problem (small-hour bins collapse). Reported next to any per-hour
// figure so sparse bins are flagged instead of shown bare.
std::vector<int> low_sample_hours(const DiurnalGroup& group,
                                  std::size_t min_samples);

struct CongestionCall {
  GroupKey key;
  stats::DiurnalComparison comparison;
  bool congested = false;  // inferred
  // True when either comparison window is under min_samples: the group
  // cannot support a call either way. Distinguishes "confidently clear"
  // from "too sparse to tell" (Section 6.1).
  bool insufficient_samples = false;
  std::size_t low_sample_hour_count = 0;  // hours under min_samples
  std::size_t tests = 0;
};

// M-Lab-style inference: congested iff the relative peak drop exceeds the
// threshold and both windows have at least min_samples; groups failing the
// sample floor are flagged insufficient rather than silently cleared.
std::vector<CongestionCall> infer_congestion(
    const std::map<GroupKey, DiurnalGroup>& groups, double drop_threshold,
    std::size_t min_samples = 20);

// Ground-truth check for a call: does any interdomain link between the
// source org and the ISP org exceed capacity at peak in the traffic model?
bool truth_pair_congested(const gen::World& world, topo::Asn source_asn,
                          const std::string& isp_name);

}  // namespace netcong::core
