// Microbenchmarks (google-benchmark) for util::FlatMap / util::FlatSet
// against the node-based std containers they replaced on the campaign hot
// paths (route::PathCache shards, MAP-IT evidence corpora, core/
// aggregation accumulators). Workloads mirror those call sites: integer
// keys from a mixed sequence, lookup-heavy phases over a resident set, and
// erase churn standing in for cache eviction.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "util/flat_map.h"
#include "util/flat_set.h"

namespace {

using namespace netcong;

std::vector<std::uint64_t> make_keys(std::size_t n) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(util::splitmix64(i * 2 + 1));
  }
  return keys;
}

template <typename M>
void insert_n(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    M m;
    for (std::uint64_t k : keys) m[k] = static_cast<int>(k);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_FlatMapInsert(benchmark::State& state) {
  insert_n<util::FlatMap<std::uint64_t, int>>(state);
}
void BM_UnorderedMapInsert(benchmark::State& state) {
  insert_n<std::unordered_map<std::uint64_t, int>>(state);
}
void BM_OrderedMapInsert(benchmark::State& state) {
  insert_n<std::map<std::uint64_t, int>>(state);
}
BENCHMARK(BM_FlatMapInsert)->Arg(1024)->Arg(65536);
BENCHMARK(BM_UnorderedMapInsert)->Arg(1024)->Arg(65536);
BENCHMARK(BM_OrderedMapInsert)->Arg(1024)->Arg(65536);

template <typename M>
void lookup_hit(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)));
  M m;
  for (std::uint64_t k : keys) m[k] = static_cast<int>(k);
  std::size_t i = 0;
  const std::size_t mask = keys.size() - 1;  // sizes are powers of two
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.find(keys[i++ & mask]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_FlatMapLookupHit(benchmark::State& state) {
  lookup_hit<util::FlatMap<std::uint64_t, int>>(state);
}
void BM_UnorderedMapLookupHit(benchmark::State& state) {
  lookup_hit<std::unordered_map<std::uint64_t, int>>(state);
}
void BM_OrderedMapLookupHit(benchmark::State& state) {
  lookup_hit<std::map<std::uint64_t, int>>(state);
}
BENCHMARK(BM_FlatMapLookupHit)->Arg(1024)->Arg(65536);
BENCHMARK(BM_UnorderedMapLookupHit)->Arg(1024)->Arg(65536);
BENCHMARK(BM_OrderedMapLookupHit)->Arg(1024)->Arg(65536);

template <typename M>
void lookup_miss(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)));
  M m;
  for (std::uint64_t k : keys) m[k] = static_cast<int>(k);
  std::size_t i = 0;
  for (auto _ : state) {
    // Absent keys: the generator only emits odd pre-mix inputs.
    benchmark::DoNotOptimize(m.find(util::splitmix64(i++ * 2)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_FlatMapLookupMiss(benchmark::State& state) {
  lookup_miss<util::FlatMap<std::uint64_t, int>>(state);
}
void BM_UnorderedMapLookupMiss(benchmark::State& state) {
  lookup_miss<std::unordered_map<std::uint64_t, int>>(state);
}
BENCHMARK(BM_FlatMapLookupMiss)->Arg(65536);
BENCHMARK(BM_UnorderedMapLookupMiss)->Arg(65536);

// Insert/erase churn over a bounded resident set — the PathCache shard
// pattern: capacity evictions keep the table near its cap while fresh keys
// keep arriving.
template <typename M>
void churn(benchmark::State& state) {
  const std::size_t cap = static_cast<std::size_t>(state.range(0));
  const auto keys = make_keys(cap * 4);
  M m;
  std::size_t i = 0;
  for (auto _ : state) {
    std::uint64_t k = keys[i % keys.size()];
    m[k] = static_cast<int>(i);
    if (m.size() > cap) m.erase(m.begin()->first);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_FlatMapChurn(benchmark::State& state) {
  churn<util::FlatMap<std::uint64_t, int>>(state);
}
void BM_UnorderedMapChurn(benchmark::State& state) {
  churn<std::unordered_map<std::uint64_t, int>>(state);
}
BENCHMARK(BM_FlatMapChurn)->Arg(4096);
BENCHMARK(BM_UnorderedMapChurn)->Arg(4096);

template <typename S>
void set_insert_contains(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    S s;
    std::size_t hits = 0;
    for (std::uint64_t k : keys) s.insert(k);
    for (std::uint64_t k : keys) hits += s.count(k);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2 * state.range(0));
}

void BM_FlatSetInsertContains(benchmark::State& state) {
  set_insert_contains<util::FlatSet<std::uint64_t>>(state);
}
void BM_OrderedSetInsertContains(benchmark::State& state) {
  set_insert_contains<std::set<std::uint64_t>>(state);
}
BENCHMARK(BM_FlatSetInsertContains)->Arg(16384);
BENCHMARK(BM_OrderedSetInsertContains)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
