file(REMOVE_RECURSE
  "CMakeFiles/netcong_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/netcong_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/netcong_stats.dir/descriptive.cpp.o"
  "CMakeFiles/netcong_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/netcong_stats.dir/hypothesis.cpp.o"
  "CMakeFiles/netcong_stats.dir/hypothesis.cpp.o.d"
  "CMakeFiles/netcong_stats.dir/timeseries.cpp.o"
  "CMakeFiles/netcong_stats.dir/timeseries.cpp.o.d"
  "libnetcong_stats.a"
  "libnetcong_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcong_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
