#include "core/link_diversity.h"

#include <algorithm>

#include "util/flat_map.h"

namespace netcong::core {

std::size_t ClientAsDiversity::total_tests() const {
  std::size_t n = 0;
  for (const auto& l : links) n += l.tests;
  return n;
}

std::vector<ClientAsDiversity> analyze_link_diversity(
    const std::vector<measure::MatchedTest>& matched, topo::Asn server_asn,
    const infer::MapItResult& mapit, const infer::Ip2As& ip2as,
    const infer::OrgMap& orgs,
    const std::map<topo::Asn, std::string>& isp_of,
    const std::map<std::uint32_t, std::string>& dns_of) {
  std::uint32_t server_org = orgs.org_of(server_asn);

  // (client_asn, near, far) -> usage
  struct Key {
    topo::Asn client;
    std::uint32_t near, far;
    bool operator<(const Key& o) const {
      return std::tie(client, near, far) < std::tie(o.client, o.near, o.far);
    }
    bool operator==(const Key& o) const {
      return client == o.client && near == o.near && far == o.far;
    }
  };
  struct KeyHash {
    std::uint64_t operator()(const Key& k) const {
      return util::splitmix64(k.client ^
                              util::splitmix64((std::uint64_t{k.near} << 32) |
                                               k.far));
    }
  };
  util::FlatMap<Key, std::size_t, KeyHash> counts;

  auto dns_for = [&](std::uint32_t addr) -> std::string {
    auto it = dns_of.find(addr);
    return it == dns_of.end() ? std::string() : it->second;
  };

  for (const auto& m : matched) {
    if (!m.traceroute) continue;
    if (orgs.org_of(m.test->server_asn) != server_org) continue;
    auto isp_it = isp_of.find(m.test->client_asn);
    if (isp_it == isp_of.end()) continue;
    std::uint32_t client_org = orgs.org_of(m.test->client_asn);

    // Find the hop pair crossing directly from the server org into the
    // client org.
    topo::IpAddr prev;
    bool have_prev = false;
    topo::Asn prev_op = 0;
    for (const auto& hop : m.traceroute->hops) {
      if (!hop.responded) {
        have_prev = false;
        continue;
      }
      topo::Asn op = mapit.op(hop.addr);
      if (op == 0) op = ip2as.origin(hop.addr);
      if (have_prev && prev_op != 0 && op != 0 &&
          orgs.org_of(prev_op) == server_org &&
          orgs.org_of(op) == client_org && server_org != client_org) {
        counts[Key{m.test->client_asn, prev.value, hop.addr.value}]++;
        break;
      }
      if (op != 0) {
        prev = hop.addr;
        prev_op = op;
        have_prev = true;
      }
    }
  }

  // Feed the per-client grouping in Key order — the order the old ordered
  // map iterated in — so each client's link list is built identically.
  std::vector<std::pair<Key, std::size_t>> ordered(counts.size());
  std::size_t w = 0;
  for (const auto& [key, n] : counts) ordered[w++] = {key, n};
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::map<topo::Asn, ClientAsDiversity> by_client;
  for (const auto& [key, n] : ordered) {
    ClientAsDiversity& d = by_client[key.client];
    d.client_asn = key.client;
    d.isp = isp_of.at(key.client);
    IpLinkUsage u;
    u.near_addr = topo::IpAddr(key.near);
    u.far_addr = topo::IpAddr(key.far);
    u.tests = n;
    u.near_dns = dns_for(key.near);
    u.far_dns = dns_for(key.far);
    d.links.push_back(std::move(u));
  }

  std::vector<ClientAsDiversity> out;
  for (auto& [asn, d] : by_client) {
    std::sort(d.links.begin(), d.links.end(),
              [](const IpLinkUsage& a, const IpLinkUsage& b) {
                return a.tests > b.tests;
              });
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<DnsRouterGroup> group_links_by_dns(const ClientAsDiversity& d) {
  util::FlatMap<std::string, DnsRouterGroup> groups;
  for (const auto& link : d.links) {
    // Prefer the near-side name (the transit's PTR names the access peer,
    // as in "COX-COMMUNI.edge5.Dallas3.Level3.net").
    std::string key = "(no PTR)";
    for (const std::string& name : {link.near_dns, link.far_dns}) {
      if (name.empty()) continue;
      auto parts = topo::parse_interdomain_dns_name(name);
      if (parts) {
        key = parts->router_name + "." + parts->city_tag;
        break;
      }
    }
    DnsRouterGroup& g = groups[key];
    g.router_and_city = key;
    g.links++;
    g.tests += link.tests;
  }
  std::vector<DnsRouterGroup> out;
  out.reserve(groups.size());
  for (auto& [k, g] : groups) out.push_back(std::move(g));
  // Sort by name first (the old ordered-map iteration order), then by link
  // count, so ties land exactly where they always did.
  std::sort(out.begin(), out.end(),
            [](const DnsRouterGroup& a, const DnsRouterGroup& b) {
              if (a.links != b.links) return a.links > b.links;
              return a.router_and_city < b.router_and_city;
            });
  return out;
}

}  // namespace netcong::core
