#pragma once

// Shared scaffolding for the experiment benches: a generated world with the
// full measurement/inference stack on top, and output helpers that print
// each artifact with its paper-reported counterpart.

#include <map>
#include <string>
#include <vector>

#include "core/coverage.h"
#include "gen/workload.h"
#include "gen/world.h"
#include "infer/alias.h"
#include "infer/bdrmap.h"
#include "infer/datasets.h"
#include "infer/mapit.h"
#include "measure/matching.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "sim/throughput.h"

namespace netcong::bench {

// Experiment scale: benches default to a paper-scale world; set
// NETCONG_BENCH_SCALE=small in the environment for a quick run.
gen::GeneratorConfig bench_config();

struct Context {
  explicit Context(const gen::GeneratorConfig& cfg);

  gen::World world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  infer::Ip2As ip2as;
  infer::OrgMap orgs;
  std::map<topo::Asn, std::string> isp_of;  // client ASN -> ISP name

  measure::Platform mlab_platform() const;
  measure::Platform speedtest_platform(bool snapshot_2017 = true) const;
};

// A standard month-long crowdsourced NDT campaign with matching and MAP-IT,
// used by Fig 1 / Table 2 / Fig 5 / Section 6 benches.
struct CampaignData {
  measure::CampaignResult result;
  std::vector<measure::MatchedTest> matched;
  measure::MatchStats match_stats;
  infer::MapItResult mapit;
};
CampaignData run_standard_campaign(Context& ctx, int days,
                                   double tests_per_client,
                                   std::uint64_t seed);

// Per-VP coverage analysis (Figures 2-4 and Section 5.4): bdrmap discovery
// plus targeted campaigns toward M-Lab servers, Speedtest servers (chosen
// snapshot) and Alexa-style content targets.
std::vector<core::VpCoverage> run_coverage(Context& ctx, bool snapshot_2017,
                                           std::uint64_t seed);

// Output helpers.
void print_header(const std::string& artifact, const std::string& title);
void print_footnote(const std::string& text);
std::string pct(double value, int decimals = 1);

}  // namespace netcong::bench
