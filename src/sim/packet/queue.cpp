#include "sim/packet/queue.h"

#include <algorithm>

namespace netcong::sim::packet {

DropTailQueue::DropTailQueue(EventQueue& events, double rate_mbps,
                             int buffer_packets, DeliverFn deliver)
    : events_(&events),
      bytes_per_s_(rate_mbps * 1e6 / 8.0),
      buffer_packets_(buffer_packets),
      deliver_(std::move(deliver)) {}

double DropTailQueue::queue_delay_s() const {
  return std::max(0.0, busy_until_ - events_->now());
}

bool DropTailQueue::enqueue(const Packet& p) {
  if (backlog_ >= buffer_packets_) {
    ++drops_;
    return false;
  }
  ++backlog_;
  double start = std::max(busy_until_, events_->now());
  double service = static_cast<double>(p.size_bytes) / bytes_per_s_;
  busy_until_ = start + service;
  Packet copy = p;
  events_->schedule(busy_until_, [this, copy] { depart(copy); });
  return true;
}

void DropTailQueue::depart(const Packet& p) {
  --backlog_;
  ++delivered_;
  deliver_(p);
}

}  // namespace netcong::sim::packet
