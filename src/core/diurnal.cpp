#include "core/diurnal.h"

#include <cmath>

#include "measure/corpus.h"
#include "sim/diurnal.h"
#include "util/flat_map.h"

namespace netcong::core {

namespace {

struct GroupKeyHash {
  std::uint64_t operator()(const GroupKey& k) const {
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : k.source) h = (h ^ c) * 1099511628211ull;
    h = (h ^ 0xffu) * 1099511628211ull;  // separator between the fields
    for (unsigned char c : k.isp) h = (h ^ c) * 1099511628211ull;
    return util::splitmix64(h);
  }
};

// Shared accumulation core for the AoS and columnar overloads: a flat map
// on the per-test hot path, converted to the ordered-map return type once.
struct GroupAccumulator {
  const gen::World& world;
  const std::function<std::string(const measure::NdtRecord&)>& source_of;
  const std::function<std::string(const measure::NdtRecord&)>& isp_of;
  util::FlatMap<GroupKey, DiurnalGroup, GroupKeyHash> groups{};
  DiurnalBuildStats local{};

  void add(const measure::NdtRecord& t) {
    ++local.total;
    if (!t.completed()) {
      ++local.incomplete;
      return;
    }
    if (t.download_mbps <= 0.0) {
      ++local.invalid_throughput;
      return;
    }
    std::string source = source_of(t);
    std::string isp = isp_of(t);
    if (source.empty() || isp.empty()) {
      ++local.unlabeled;
      return;
    }
    ++local.used;
    GroupKey key{source, isp};
    DiurnalGroup& g = groups[key];
    g.source = source;
    g.isp = isp;
    int offset =
        world.topo->city(world.topo->host(t.client).city).utc_offset_hours;
    double local_hr =
        sim::local_hour(std::fmod(t.utc_time_hours, 24.0), offset);
    g.throughput.add(local_hr, t.download_mbps);
    // Dropped WebStats fields must not enter the RTT/retransmission series
    // as zeros — the throughput sample survives, the fields do not.
    if (t.has_webstats) {
      g.rtt.add(local_hr, t.flow_rtt_ms);
      g.retrans.add(local_hr, t.retrans_rate);
    }
    g.tests++;
  }

  std::map<GroupKey, DiurnalGroup> finish(DiurnalBuildStats* stats) {
    std::map<GroupKey, DiurnalGroup> out;
    for (auto& [key, g] : groups) out.emplace(key, std::move(g));
    if (stats) *stats = local;
    return out;
  }
};

}  // namespace

std::map<GroupKey, DiurnalGroup> build_diurnal_groups(
    const std::vector<measure::NdtRecord>& tests, const gen::World& world,
    const std::function<std::string(const measure::NdtRecord&)>& source_of,
    const std::function<std::string(const measure::NdtRecord&)>& isp_of,
    DiurnalBuildStats* stats) {
  GroupAccumulator acc{world, source_of, isp_of};
  for (const auto& t : tests) acc.add(t);
  return acc.finish(stats);
}

std::map<GroupKey, DiurnalGroup> build_diurnal_groups(
    const measure::NdtCorpus& tests, const gen::World& world,
    const std::function<std::string(const measure::NdtRecord&)>& source_of,
    const std::function<std::string(const measure::NdtRecord&)>& isp_of,
    DiurnalBuildStats* stats, std::size_t batch_size) {
  GroupAccumulator acc{world, source_of, isp_of};
  measure::for_each_batch(
      tests.size(), batch_size, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          acc.add(tests.materialize_scalar(i));
        }
      });
  return acc.finish(stats);
}

std::vector<int> low_sample_hours(const DiurnalGroup& group,
                                  std::size_t min_samples) {
  std::vector<int> out;
  for (int h = 0; h < 24; ++h) {
    if (group.throughput.bin(h).size() < min_samples) out.push_back(h);
  }
  return out;
}

std::vector<CongestionCall> infer_congestion(
    const std::map<GroupKey, DiurnalGroup>& groups, double drop_threshold,
    std::size_t min_samples) {
  std::vector<CongestionCall> out;
  for (const auto& [key, g] : groups) {
    CongestionCall call;
    call.key = key;
    call.tests = g.tests;
    call.comparison = stats::compare_peak_offpeak(g.throughput);
    call.insufficient_samples =
        call.comparison.peak_count < min_samples ||
        call.comparison.offpeak_count < min_samples ||
        std::isnan(call.comparison.relative_drop);
    call.low_sample_hour_count = low_sample_hours(g, min_samples).size();
    call.congested = !call.insufficient_samples &&
                     call.comparison.relative_drop >= drop_threshold;
    out.push_back(std::move(call));
  }
  return out;
}

bool truth_pair_congested(const gen::World& world, topo::Asn source_asn,
                          const std::string& isp_name) {
  auto it = world.isp_asns.find(isp_name);
  if (it == world.isp_asns.end()) return false;
  const topo::Topology& topo = *world.topo;
  for (topo::Asn isp_asn : it->second) {
    for (topo::Asn src_sib : topo.siblings_of(source_asn)) {
      for (topo::LinkId l : topo.interdomain_links(src_sib, isp_asn)) {
        if (world.traffic->congested_at_peak(l)) return true;
      }
    }
  }
  return false;
}

}  // namespace netcong::core
