# Empty compiler generated dependencies file for netcong_gen.
# This may be replaced when dependencies are built.
