#include "infer/fingerprint.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "measure/fingerprint.h"

namespace netcong::infer {

namespace {

void mix_coverage(measure::Fingerprint& fp, const CorpusCoverage& c) {
  fp.mix(static_cast<std::uint64_t>(c.traces_total));
  fp.mix(static_cast<std::uint64_t>(c.traces_used));
  fp.mix(static_cast<std::uint64_t>(c.traces_unusable));
  fp.mix(static_cast<std::uint64_t>(c.hops_total));
  fp.mix(static_cast<std::uint64_t>(c.hops_responsive));
}

void mix_result(measure::Fingerprint& fp, const MapItResult& r) {
  std::vector<std::pair<std::uint32_t, topo::Asn>> assignment;
  assignment.reserve(r.operating_as.size());
  for (const auto& [addr, asn] : r.operating_as) {
    assignment.emplace_back(addr, asn);
  }
  std::sort(assignment.begin(), assignment.end());
  fp.mix(static_cast<std::uint64_t>(assignment.size()));
  for (const auto& [addr, asn] : assignment) {
    fp.mix(static_cast<std::uint64_t>(addr));
    fp.mix(static_cast<std::uint64_t>(asn));
  }
  fp.mix(static_cast<std::uint64_t>(r.crossings.size()));
  for (const BorderCrossing& c : r.crossings) {
    fp.mix(static_cast<std::uint64_t>(c.near_addr.value));
    fp.mix(static_cast<std::uint64_t>(c.far_addr.value));
    fp.mix(static_cast<std::uint64_t>(c.near_as));
    fp.mix(static_cast<std::uint64_t>(c.far_as));
    fp.mix(static_cast<std::uint64_t>(c.observations));
  }
  fp.mix(static_cast<std::uint64_t>(r.passes_run));
  fp.mix(static_cast<std::uint64_t>(r.reassignments));
  mix_coverage(fp, r.coverage);
}

}  // namespace

std::uint64_t fingerprint(const MapItResult& result) {
  measure::Fingerprint fp;
  mix_result(fp, result);
  return fp.value();
}

std::uint64_t fingerprint(const BdrmapResult& result) {
  measure::Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(result.vp_as));
  fp.mix(static_cast<std::uint64_t>(result.borders.size()));
  for (const BdrmapBorder& b : result.borders) {
    fp.mix(static_cast<std::uint64_t>(b.neighbor));
    fp.mix(static_cast<std::uint64_t>(b.rel));
    fp.mix(static_cast<std::uint64_t>(b.far_ifaces.size()));
    for (topo::IpAddr a : b.far_ifaces) {
      fp.mix(static_cast<std::uint64_t>(a.value));
    }
    fp.mix(static_cast<std::uint64_t>(b.far_routers.size()));
    for (std::uint64_t r : b.far_routers) fp.mix(r);
  }
  mix_result(fp, result.mapit);
  return fp.value();
}

}  // namespace netcong::infer
