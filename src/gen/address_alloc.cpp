#include "gen/address_alloc.h"

#include <cassert>
#include <stdexcept>

namespace netcong::gen {

topo::Prefix AddressAllocator::alloc_block(std::uint8_t len) {
  assert(len >= 1 && len <= 32);
  std::uint64_t size = 1ull << (32 - len);
  // Align up.
  std::uint64_t start = (next_ + size - 1) / size * size;
  if (start + size > (1ull << 32)) {
    throw std::runtime_error("AddressAllocator: IPv4 space exhausted");
  }
  next_ = start + size;
  return topo::Prefix(topo::IpAddr(static_cast<std::uint32_t>(start)), len);
}

bool P2pCarver::next(bool use_slash31, Subnet& out) {
  std::uint32_t step = use_slash31 ? 2 : 4;
  if (offset_ + step > pool_.size()) return false;
  out.prefix = topo::Prefix(pool_.nth(offset_),
                            static_cast<std::uint8_t>(use_slash31 ? 31 : 30));
  if (use_slash31) {
    out.a = pool_.nth(offset_);
    out.b = pool_.nth(offset_ + 1);
  } else {
    // /30 convention: .1 and .2 are the usable pair.
    out.a = pool_.nth(offset_ + 1);
    out.b = pool_.nth(offset_ + 2);
  }
  offset_ += step;
  return true;
}

bool HostCarver::next(topo::IpAddr& out) {
  if (offset_ >= pool_.size() - 1) return false;  // keep the broadcast slot
  out = pool_.nth(offset_++);
  return true;
}

}  // namespace netcong::gen
