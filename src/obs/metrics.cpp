#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>

#include "util/json.h"
#include "util/logging.h"
#include "util/strings.h"

namespace netcong::obs {

namespace {
// One module-wide mutex serializes every cold operation across all
// registries: registration, snapshot, reset, slab birth/retirement, and
// registry destruction. Hot-path increments never take it.
std::mutex& obs_mutex() {
  static std::mutex mu;
  return mu;
}

std::atomic<std::uint64_t> g_next_registry_id{1};

}  // namespace

// Per-thread storage: a fixed-size block of single-writer atomics. The
// owning thread is the only writer; snapshots read concurrently with
// relaxed loads. Fixed capacity keeps the layout stable so readers never
// race a resize.
struct MetricsRegistry::Slab {
  MetricsRegistry* owner = nullptr;  // null once the registry died first
  std::uint64_t registry_id = 0;
  std::uint64_t seq = 0;  // registration order, for deterministic merging
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kMaxHistogramBins> bins{};
  std::array<std::atomic<double>, kMaxHistograms> hist_sums{};
};

// The calling thread's slabs, one per registry it has written to. The
// destructor (thread exit) folds each slab's totals into its registry so
// short-lived worker threads never lose counts.
struct MetricsRegistry::ThreadSlabs {
  std::vector<std::unique_ptr<Slab>> slabs;
  ~ThreadSlabs() {
    std::lock_guard<std::mutex> lk(obs_mutex());
    for (auto& slab : slabs) {
      if (slab->owner != nullptr) slab->owner->retire_slab(*slab);
    }
  }
};

MetricsRegistry::MetricsRegistry()
    : registry_id_(g_next_registry_id.fetch_add(1)) {}

MetricsRegistry::~MetricsRegistry() {
  // Detach live slabs so their threads' exit hooks skip the dead registry.
  std::lock_guard<std::mutex> lk(obs_mutex());
  for (Slab* slab : live_slabs_) slab->owner = nullptr;
  live_slabs_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrumented code may run during static destruction.
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

MetricsRegistry::Slab* MetricsRegistry::thread_slab() {
  thread_local ThreadSlabs t_slabs;
  for (auto& slab : t_slabs.slabs) {
    if (slab->registry_id == registry_id_) return slab.get();
  }
  auto slab = std::make_unique<Slab>();
  slab->owner = this;
  slab->registry_id = registry_id_;
  Slab* raw = slab.get();
  {
    std::lock_guard<std::mutex> lk(obs_mutex());
    slab->seq = next_slab_seq_++;
    live_slabs_.push_back(raw);
  }
  t_slabs.slabs.push_back(std::move(slab));
  return raw;
}

void MetricsRegistry::retire_slab(Slab& slab) {
  // Caller holds obs_mutex().
  for (std::size_t i = 0; i < kMaxCounters; ++i) {
    retired_counters_[i] += slab.counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxHistogramBins; ++i) {
    retired_bins_[i] += slab.bins[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxHistograms; ++i) {
    retired_hist_sums_[i] += slab.hist_sums[i].load(std::memory_order_relaxed);
  }
  live_slabs_.erase(std::remove(live_slabs_.begin(), live_slabs_.end(), &slab),
                    live_slabs_.end());
  slab.owner = nullptr;
}

// NB: registration never logs while holding obs_mutex() — the obs log sink
// itself increments counters, and a first-touch increment registers a
// thread slab under the same mutex.
Counter MetricsRegistry::counter(const std::string& name) {
  bool full = false;
  {
    std::lock_guard<std::mutex> lk(obs_mutex());
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      if (counter_names_[i] == name) {
        return Counter(this, static_cast<std::uint32_t>(i));
      }
    }
    if (counter_names_.size() < kMaxCounters) {
      counter_names_.push_back(name);
      return Counter(this,
                     static_cast<std::uint32_t>(counter_names_.size() - 1));
    }
    full = true;
  }
  if (full) NETCONG_WARN << "obs: counter capacity exceeded, dropping " << name;
  return Counter();
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  bool full = false;
  {
    std::lock_guard<std::mutex> lk(obs_mutex());
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
      if (gauge_names_[i] == name) {
        return Gauge(this, static_cast<std::uint32_t>(i));
      }
    }
    if (gauge_names_.size() < kMaxGauges) {
      gauge_names_.push_back(name);
      return Gauge(this, static_cast<std::uint32_t>(gauge_names_.size() - 1));
    }
    full = true;
  }
  if (full) NETCONG_WARN << "obs: gauge capacity exceeded, dropping " << name;
  return Gauge();
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds) {
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  bool full = false, mismatch = false;
  Histogram existing;
  {
    std::lock_guard<std::mutex> lk(obs_mutex());
    for (std::size_t i = 0; i < hist_count_; ++i) {
      if (histograms_[i].name == name) {
        mismatch = histograms_[i].bounds != bounds;
        existing = Histogram(this, static_cast<std::uint32_t>(i));
        if (mismatch) break;
        return existing;
      }
    }
    std::uint32_t bin_count = static_cast<std::uint32_t>(bounds.size()) + 1;
    if (!mismatch) {
      if (hist_count_ < kMaxHistograms &&
          bins_used_ + bin_count <= kMaxHistogramBins) {
        HistogramInfo& info = histograms_[hist_count_];
        info.name = name;
        info.bounds = std::move(bounds);
        info.bin_offset = bins_used_;
        info.bin_count = bin_count;
        bins_used_ += bin_count;
        return Histogram(this, hist_count_++);
      }
      full = true;
    }
  }
  if (mismatch) {
    NETCONG_WARN << "obs: histogram " << name
                 << " re-registered with different bounds; keeping the "
                    "original bin layout";
    return existing;
  }
  if (full) {
    NETCONG_WARN << "obs: histogram capacity exceeded, dropping " << name;
  }
  return Histogram();
}

void MetricsRegistry::add_counter(std::uint32_t id, std::uint64_t n) {
  Slab* slab = thread_slab();
  std::atomic<std::uint64_t>& c = slab->counters[id];
  // Single-writer: a relaxed load+store is enough (and cheaper than RMW).
  c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

void MetricsRegistry::observe_histogram(std::uint32_t id, double value) {
  // Lock-free: histograms_ is a fixed array whose entries are written once,
  // at registration, strictly before the handle carrying `id` escapes — so
  // this read can never race a write to the same entry.
  const HistogramInfo* info = &histograms_[id];
  std::size_t bin = static_cast<std::size_t>(
      std::lower_bound(info->bounds.begin(), info->bounds.end(), value) -
      info->bounds.begin());
  Slab* slab = thread_slab();
  std::atomic<std::uint64_t>& b = slab->bins[info->bin_offset + bin];
  b.store(b.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  std::atomic<double>& s = slab->hist_sums[id];
  s.store(s.load(std::memory_order_relaxed) + value,
          std::memory_order_relaxed);
}

void Counter::inc(std::uint64_t n) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->add_counter(id_, n);
}

void Gauge::set(double value) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->gauges_[id_].store(value, std::memory_order_relaxed);
}

void Histogram::observe(double value) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->observe_histogram(id_, value);
}

std::vector<double> exp_bounds(double lo, double hi, int steps) {
  std::vector<double> out;
  if (steps < 1 || lo <= 0.0 || hi <= lo) return out;
  double ratio = hi / lo;
  for (int i = 0; i <= steps; ++i) {
    out.push_back(lo * std::pow(ratio, static_cast<double>(i) / steps));
  }
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(obs_mutex());
  // Deterministic merge order: retired totals, then live slabs sorted by
  // registration sequence. (Counter sums are order-independent; histogram
  // double sums get a stable order anyway.)
  std::vector<Slab*> slabs = live_slabs_;
  std::sort(slabs.begin(), slabs.end(),
            [](const Slab* a, const Slab* b) { return a->seq < b->seq; });

  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::uint64_t total = retired_counters_[i];
    for (const Slab* s : slabs) {
      total += s->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(counter_names_[i], total);
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges.emplace_back(gauge_names_[i],
                             gauges_[i].load(std::memory_order_relaxed));
  }
  for (std::size_t h = 0; h < hist_count_; ++h) {
    const HistogramInfo& info = histograms_[h];
    HistogramValue v;
    v.bounds = info.bounds;
    v.counts.resize(info.bin_count, 0);
    v.sum = retired_hist_sums_[h];
    for (std::uint32_t b = 0; b < info.bin_count; ++b) {
      v.counts[b] = retired_bins_[info.bin_offset + b];
    }
    for (const Slab* s : slabs) {
      for (std::uint32_t b = 0; b < info.bin_count; ++b) {
        v.counts[b] +=
            s->bins[info.bin_offset + b].load(std::memory_order_relaxed);
      }
      v.sum += s->hist_sums[h].load(std::memory_order_relaxed);
    }
    for (std::uint64_t c : v.counts) v.count += c;
    snap.histograms.emplace_back(info.name, std::move(v));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(obs_mutex());
  retired_counters_.fill(0);
  retired_bins_.fill(0);
  retired_hist_sums_.fill(0.0);
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
  for (Slab* slab : live_slabs_) {
    for (auto& c : slab->counters) c.store(0, std::memory_order_relaxed);
    for (auto& b : slab->bins) b.store(0, std::memory_order_relaxed);
    for (auto& s : slab->hist_sums) s.store(0.0, std::memory_order_relaxed);
  }
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramValue* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += util::format("%s\n    %s: %llu", i ? "," : "",
                        util::json_quote(counters[i].first).c_str(),
                        static_cast<unsigned long long>(counters[i].second));
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += util::format("%s\n    %s: %s", i ? "," : "",
                        util::json_quote(gauges[i].first).c_str(),
                        util::json_number(gauges[i].second).c_str());
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i].second;
    out += util::format("%s\n    %s: {\"bounds\": [", i ? "," : "",
                        util::json_quote(histograms[i].first).c_str());
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      out += util::format("%s%s", b ? ", " : "",
                          util::json_number(h.bounds[b]).c_str());
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      out += util::format("%s%llu", b ? ", " : "",
                          static_cast<unsigned long long>(h.counts[b]));
    }
    out += util::format("], \"count\": %llu, \"sum\": %s}",
                        static_cast<unsigned long long>(h.count),
                        util::json_number(h.sum).c_str());
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void hook_logging() {
  static std::once_flag once;
  std::call_once(once, [] {
    MetricsRegistry& reg = MetricsRegistry::global();
    // Fixed handles per level, so the sink itself is allocation-free.
    static const Counter debug = reg.counter("log.lines.debug");
    static const Counter info = reg.counter("log.lines.info");
    static const Counter warn = reg.counter("log.lines.warn");
    static const Counter error = reg.counter("log.lines.error");
    util::set_log_sink([](util::LogLevel level, const std::string& line) {
      switch (level) {
        case util::LogLevel::kDebug: debug.inc(); break;
        case util::LogLevel::kInfo: info.inc(); break;
        case util::LogLevel::kWarn: warn.inc(); break;
        case util::LogLevel::kError: error.inc(); break;
      }
      util::write_log_line_to_stderr(line);
    });
  });
}

}  // namespace netcong::obs
