# Empty compiler generated dependencies file for platform_planning.
# This may be replaced when dependencies are built.
