#pragma once

// MAP-IT-style multipass inference of interdomain links from a corpus of
// traceroutes (Marder & Smith, IMC 2016 — reference [28] in the paper).
//
// The core difficulty: on an interdomain link between ASes A and B, the
// interface that replies on B's router is frequently numbered out of A's
// address space, so a naive prefix-to-AS mapping places the border one hop
// too late. MAP-IT's premise is that a single traceroute is insufficient:
// collating the whole corpus gives, for each interface, the distribution of
// ASes appearing before and after it, plus the origin of its point-to-point
// "mate" address, which together pin down the operating AS.
//
// This implementation follows that skeleton:
//   pass 0: every interface's operating AS = its BGP origin (IXP addresses
//           start unknown);
//   pass k: an interface whose successor evidence consistently points to a
//           different AS than its origin — while its predecessors and/or
//           mate stay with the origin AS — is reassigned to the successor
//           AS. Iterate to fixpoint.
// Border crossings are then the hop pairs whose operating ASes differ.

#include <vector>

#include "infer/datasets.h"
#include "measure/traceroute.h"
#include "util/flat_map.h"

namespace netcong::infer {

struct MapItConfig {
  int max_passes = 6;
  // Minimum fraction of successor evidence needed to override the origin.
  // A genuine far-side interface sees essentially unanimous downstream
  // evidence, so a high bar costs little recall but avoids flipping border
  // interfaces that serve several neighbors.
  double majority = 0.70;
  // Minimum observations of an interface before reassignment is allowed.
  int min_observations = 1;
};

// Effective sample coverage of a traceroute corpus as consumed by an
// inference pass — emitted next to every result so a conclusion drawn from
// a degraded corpus carries its own data-quality caveat (the paper's
// Section 4.1/6 warning, and Feamster's "conclusions are only trustworthy
// with the caveats attached").
struct CorpusCoverage {
  std::size_t traces_total = 0;
  std::size_t traces_used = 0;      // contributed at least one hop pair
  std::size_t traces_unusable = 0;  // invalid, empty, or all-star
  std::size_t hops_total = 0;
  std::size_t hops_responsive = 0;

  double trace_fraction() const {
    return traces_total == 0
               ? 0.0
               : static_cast<double>(traces_used) / traces_total;
  }
  double hop_fraction() const {
    return hops_total == 0
               ? 0.0
               : static_cast<double>(hops_responsive) / hops_total;
  }
  bool accounted() const {
    return traces_total == traces_used + traces_unusable;
  }
};

struct BorderCrossing {
  topo::IpAddr near_addr;  // last interface in the near AS
  topo::IpAddr far_addr;   // first interface in the far AS (in-interface)
  topo::Asn near_as = 0;
  topo::Asn far_as = 0;
  int observations = 0;    // traceroute hop-pairs seen crossing here
};

struct MapItResult {
  // Final operating-AS assignment per interface address (0 = unknown).
  util::FlatMap<std::uint32_t, topo::Asn> operating_as;
  // Distinct (near_addr, far_addr) crossings, sorted by (near, far) address.
  std::vector<BorderCrossing> crossings;
  int passes_run = 0;
  int reassignments = 0;  // interfaces whose AS changed from the BGP origin
  // How much of the input corpus actually fed the inference.
  CorpusCoverage coverage;

  topo::Asn op(topo::IpAddr a) const {
    auto it = operating_as.find(a.value);
    return it == operating_as.end() ? 0 : it->second;
  }
};

// Incremental evidence store backing MAP-IT inference. The aggregation
// tables a batch run collates from a whole corpus — per-interface
// observation counts and origins, consecutive-hop-pair counts, corpus
// coverage accounting — are all sums keyed by pure functions of a single
// traceroute, so they can be fed one record at a time (a streaming ingest
// worker) or built shard-by-shard and merged. `infer()` runs the fixpoint
// passes over whatever evidence has accumulated so far.
//
// Determinism contract: the tables are commutative accumulations and the
// flat containers' canonical layout makes iteration order a pure function
// of the resident key set, so `infer()` output is bit-identical for any
// interleaving, sharding, or merge order of the same evidence — and
// identical to `run_mapit` over the same records (which is now implemented
// as add() per record + infer()). This is the property the serve
// subsystem's snapshot-equals-batch obligation rests on (DESIGN.md §11).
class MapItEvidence {
 public:
  // Collates one traceroute into the tables. Origins resolve through
  // `ip2as` at first observation of each interface; the same store must
  // always be fed through the same mapping.
  void add(const measure::TracerouteRecord& trace, const Ip2As& ip2as);

  // Folds another store into this one (sums counts; both sides must have
  // been fed through the same Ip2As). Commutative and associative.
  void merge(const MapItEvidence& other);

  // Runs the multipass inference over the accumulated evidence. Cost is
  // O(interfaces + hop pairs), independent of how many traceroutes fed the
  // store — the incremental win over re-collating a growing corpus.
  MapItResult infer(const Ip2As& ip2as, const OrgMap& orgs,
                    const MapItConfig& config = MapItConfig{}) const;

  std::size_t traces() const { return coverage_.traces_total; }
  std::size_t interfaces() const { return ifaces_.size(); }
  std::size_t hop_pairs() const { return hop_pairs_.size(); }
  const CorpusCoverage& coverage() const { return coverage_; }

 private:
  struct IfaceEvidence {
    topo::Asn origin = 0;  // BGP origin at first observation (0 = unknown)
    bool ixp = false;
    int observations = 0;
  };

  util::FlatMap<std::uint32_t, IfaceEvidence> ifaces_;
  // (prev_addr << 32 | next_addr) -> times this consecutive pair was seen.
  util::FlatMap<std::uint64_t, int> hop_pairs_;
  CorpusCoverage coverage_;
};

MapItResult run_mapit(const std::vector<measure::TracerouteRecord>& corpus,
                      const Ip2As& ip2as, const OrgMap& orgs,
                      const MapItConfig& config = MapItConfig{});

// Validation helper, only usable where the Topology (ground truth) is
// available. A crossing is scored:
//  * exact     — both interfaces' routers owned by the claimed orgs;
//  * adjacent  — the claimed far interface actually still sits on the near
//    AS's border router, but that router does have an interdomain link to
//    the claimed far AS. This is the inherent one-hop ambiguity of
//    single-direction traceroute that the paper warns about ("the MAP-IT
//    algorithm could fail or produce an incorrect inference"): the border
//    router pair is right, the interface attribution is off by one.
//  * wrong     — anything else.
struct MapItAccuracy {
  std::size_t crossings_checked = 0;
  std::size_t exact = 0;
  std::size_t adjacent = 0;
  std::size_t correct = 0;  // exact + adjacent
  double precision() const {
    return crossings_checked == 0
               ? 0.0
               : static_cast<double>(correct) / crossings_checked;
  }
  double exact_fraction() const {
    return crossings_checked == 0
               ? 0.0
               : static_cast<double>(exact) / crossings_checked;
  }
};
MapItAccuracy evaluate_mapit(const MapItResult& result,
                             const topo::Topology& topo,
                             const OrgMap& orgs);

}  // namespace netcong::infer
