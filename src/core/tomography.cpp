#include "core/tomography.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace netcong::core {

namespace {

struct Instance {
  // Candidate links (not exonerated) and, per bad path, the candidate set.
  std::vector<topo::LinkId> candidates;
  std::vector<std::vector<std::size_t>> bad_paths;  // candidate indices
  std::size_t inconsistent_paths = 0;
};

Instance reduce(const std::vector<PathObservation>& observations) {
  Instance inst;
  std::unordered_set<std::uint32_t> good_links;
  for (const auto& obs : observations) {
    if (obs.bad) continue;
    for (topo::LinkId l : obs.links) good_links.insert(l.value);
  }
  std::unordered_map<std::uint32_t, std::size_t> cand_index;
  for (const auto& obs : observations) {
    if (!obs.bad) continue;
    std::vector<std::size_t> path;
    for (topo::LinkId l : obs.links) {
      if (good_links.count(l.value)) continue;
      auto [it, fresh] = cand_index.try_emplace(
          l.value, inst.candidates.size());
      if (fresh) inst.candidates.push_back(l);
      path.push_back(it->second);
    }
    std::sort(path.begin(), path.end());
    path.erase(std::unique(path.begin(), path.end()), path.end());
    if (path.empty()) {
      ++inst.inconsistent_paths;
    } else {
      inst.bad_paths.push_back(std::move(path));
    }
  }
  return inst;
}

TomographyResult greedy_cover(const Instance& inst) {
  TomographyResult result;
  result.consistent = inst.inconsistent_paths == 0;
  result.uncovered_bad_paths = inst.inconsistent_paths;

  std::vector<bool> covered(inst.bad_paths.size(), false);
  std::size_t remaining = inst.bad_paths.size();
  // Membership: candidate -> bad paths containing it.
  std::vector<std::vector<std::size_t>> member(inst.candidates.size());
  for (std::size_t p = 0; p < inst.bad_paths.size(); ++p) {
    for (std::size_t c : inst.bad_paths[p]) member[c].push_back(p);
  }
  while (remaining > 0) {
    // Pick the candidate covering the most uncovered paths; ties broken by
    // link id for determinism.
    std::size_t best = 0;
    std::size_t best_gain = 0;
    for (std::size_t c = 0; c < inst.candidates.size(); ++c) {
      std::size_t gain = 0;
      for (std::size_t p : member[c]) {
        if (!covered[p]) ++gain;
      }
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 &&
           inst.candidates[c] < inst.candidates[best])) {
        best_gain = gain;
        best = c;
      }
    }
    if (best_gain == 0) break;  // cannot happen if paths non-empty
    result.bad_links.push_back(inst.candidates[best]);
    for (std::size_t p : member[best]) {
      if (!covered[p]) {
        covered[p] = true;
        --remaining;
      }
    }
  }
  std::sort(result.bad_links.begin(), result.bad_links.end());
  return result;
}

}  // namespace

TomographyResult greedy_binary_tomography(
    const std::vector<PathObservation>& observations) {
  return greedy_cover(reduce(observations));
}

TomographyResult exact_binary_tomography(
    const std::vector<PathObservation>& observations,
    std::size_t max_candidates) {
  Instance inst = reduce(observations);
  if (inst.candidates.size() > max_candidates ||
      inst.candidates.size() > 63) {
    return greedy_cover(inst);
  }
  TomographyResult greedy = greedy_cover(inst);
  if (inst.bad_paths.empty()) return greedy;

  // Branch and bound over candidate subsets, seeded with the greedy bound.
  std::vector<std::uint64_t> path_masks;
  path_masks.reserve(inst.bad_paths.size());
  for (const auto& p : inst.bad_paths) {
    std::uint64_t m = 0;
    for (std::size_t c : p) m |= (1ull << c);
    path_masks.push_back(m);
  }
  std::size_t best_size = greedy.bad_links.size();
  std::uint64_t best_mask = 0;
  bool found = false;

  // Iterate subsets in increasing popcount via simple search with pruning.
  // DFS over candidates: include/exclude.
  std::uint64_t n = inst.candidates.size();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stack;  // (idx, mask)
  stack.emplace_back(0, 0);
  while (!stack.empty()) {
    auto [idx, mask] = stack.back();
    stack.pop_back();
    std::size_t size = static_cast<std::size_t>(__builtin_popcountll(mask));
    if (size >= best_size) continue;
    bool all_covered = true;
    std::uint64_t first_uncovered = 0;
    for (std::uint64_t pm : path_masks) {
      if ((pm & mask) == 0) {
        all_covered = false;
        first_uncovered = pm;
        break;
      }
    }
    if (all_covered) {
      best_size = size;
      best_mask = mask;
      found = true;
      continue;
    }
    if (idx >= n) continue;
    // Branch on each candidate in the first uncovered path (standard
    // hitting-set branching: some candidate of that path must be chosen).
    for (std::uint64_t c = 0; c < n; ++c) {
      if (first_uncovered & (1ull << c)) {
        if (!(mask & (1ull << c))) {
          stack.emplace_back(idx + 1, mask | (1ull << c));
        }
      }
    }
  }

  if (!found) return greedy;
  TomographyResult result;
  result.consistent = inst.inconsistent_paths == 0;
  result.uncovered_bad_paths = inst.inconsistent_paths;
  for (std::uint64_t c = 0; c < n; ++c) {
    if (best_mask & (1ull << c)) result.bad_links.push_back(inst.candidates[c]);
  }
  std::sort(result.bad_links.begin(), result.bad_links.end());
  return result;
}

TomographyScore score_tomography(const std::vector<topo::LinkId>& inferred,
                                 const std::vector<topo::LinkId>& truth) {
  TomographyScore s;
  s.inferred = inferred.size();
  s.truth = truth.size();
  std::unordered_set<std::uint32_t> t;
  for (topo::LinkId l : truth) t.insert(l.value);
  for (topo::LinkId l : inferred) {
    if (t.count(l.value)) ++s.true_positives;
  }
  return s;
}

}  // namespace netcong::core
