// Scaling sweep for ROADMAP item 1 (Internet-scale campaigns): world size
// (~1k / 10k / 30k ASes) × corpus size (100k / 1M / 10M NDT tests), each
// point running the full campaign engine (planning, parallel test
// simulation, traceroute daemon) and reporting wall time, tests/sec, and
// peak RSS into BENCH_scale.json.
//
// Unlike the paper-artifact benches this one controls the corpus size
// exactly: requests are synthesized round-robin over the client population
// at a fixed global arrival rate instead of sampling a crowdsourced
// workload, so a "1M-test" point is 1M planned tests on every run and
// tests/sec numbers are comparable across commits.
//
// Scale selection:
//   NETCONG_BENCH_SCALE=tiny   -> 1k-AS world, 10k tests (CI smoke)
//   NETCONG_BENCH_SCALE=small  -> {1k,10k} ASes × 100k tests
//   default                    -> {1k,10k,30k} × {100k,1M,10M}
// Point-list overrides (comma-separated, win over the preset):
//   NETCONG_SCALE_WORLDS=1k,10k,30k
//   NETCONG_SCALE_TESTS=100k,1m,10m   (raw integers also accepted)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "gen/workload.h"
#include "measure/corpus.h"

namespace {

struct WorldPoint {
  std::string label;
  double customer_scale;
};

struct CorpusPoint {
  std::string label;
  std::size_t tests;
};

// customer_scale -> AS count is close to linear (ases ≈ 63 + 5650·scale);
// these hit the nominal targets within a few percent. The actual as_count
// of each generated world is recorded in the JSON.
WorldPoint world_point(const std::string& tok) {
  if (tok == "1k") return {"1k", 0.17};
  if (tok == "10k") return {"10k", 1.76};
  if (tok == "30k") return {"30k", 5.30};
  std::fprintf(stderr, "bench_scale: unknown world size '%s' (use 1k|10k|30k)\n",
               tok.c_str());
  std::exit(2);
}

CorpusPoint corpus_point(const std::string& tok) {
  if (tok == "100k") return {"100k", 100'000};
  if (tok == "1m" || tok == "1M") return {"1m", 1'000'000};
  if (tok == "10m" || tok == "10M") return {"10m", 10'000'000};
  char* end = nullptr;
  unsigned long long n = std::strtoull(tok.c_str(), &end, 10);
  if (end && *end == '\0' && n > 0) return {tok, static_cast<std::size_t>(n)};
  std::fprintf(stderr,
               "bench_scale: unknown corpus size '%s' (use 100k|1m|10m or an "
               "integer)\n",
               tok.c_str());
  std::exit(2);
}

std::vector<std::string> split_list(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (; *s; ++s) {
    if (*s == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(*s);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// Fixed-rate synthetic schedule: exactly `n` requests, round-robin over the
// client population, arriving at a constant 5000 tests/hour platform-wide.
std::vector<netcong::gen::TestRequest> synthetic_schedule(
    const std::vector<std::uint32_t>& clients, std::size_t n) {
  constexpr double kTestsPerHour = 5000.0;
  std::vector<netcong::gen::TestRequest> schedule;
  schedule.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    netcong::gen::TestRequest req;
    req.client = clients[i % clients.size()];
    req.utc_time_hours = static_cast<double>(i) / kTestsPerHour;
    schedule.push_back(req);
  }
  return schedule;
}

}  // namespace

int main() {
  using namespace netcong;

  bench::print_header("BENCH scale",
                      "world size × corpus size campaign scaling sweep");

  std::vector<std::string> world_toks;
  std::vector<std::string> corpus_toks;
  const char* preset = std::getenv("NETCONG_BENCH_SCALE");
  if (preset && std::strcmp(preset, "tiny") == 0) {
    world_toks = {"1k"};
    corpus_toks = {"10000"};
  } else if (preset && std::strcmp(preset, "small") == 0) {
    world_toks = {"1k", "10k"};
    corpus_toks = {"100k"};
  } else {
    world_toks = {"1k", "10k", "30k"};
    corpus_toks = {"100k", "1m", "10m"};
  }
  if (const char* w = std::getenv("NETCONG_SCALE_WORLDS")) {
    world_toks = split_list(w);
  }
  if (const char* t = std::getenv("NETCONG_SCALE_TESTS")) {
    corpus_toks = split_list(t);
  }

  bench::BenchRecorder rec("scale");

  for (const std::string& wtok : world_toks) {
    WorldPoint wp = world_point(wtok);
    gen::GeneratorConfig cfg = gen::GeneratorConfig::full();
    cfg.seed = 20150501;
    cfg.customer_scale = wp.customer_scale;
    // Client count only needs to be large enough for realistic server
    // fan-in; the corpus size is set by the schedule, not the population.
    cfg.clients_per_access_isp = 400;

    bench::Stopwatch sw_world;
    bench::Context ctx(cfg);
    const double build_ms = sw_world.elapsed_ms();
    const std::string wname = "w" + wp.label;
    rec.record(wname + "_build", build_ms);
    rec.stat(wname + "_build", "ases",
             static_cast<double>(ctx.world.topo->as_count()));
    rec.stat(wname + "_build", "clients",
             static_cast<double>(ctx.world.clients.size()));

    measure::Platform mlab = ctx.mlab_platform();

    for (const std::string& ctok : corpus_toks) {
      CorpusPoint cp = corpus_point(ctok);
      const std::string name = wname + "_t" + cp.label;
      auto schedule = synthetic_schedule(ctx.world.clients, cp.tests);

      // Fresh path cache per point so later points don't ride on a memo
      // warmed by earlier ones.
      route::PathCache cache(ctx.fwd);
      measure::CampaignConfig cc;
      measure::NdtCampaign campaign(ctx.world, ctx.fwd, ctx.model, mlab, cc);
      campaign.set_path_cache(&cache);
      util::Rng rng(7);

      bench::Stopwatch sw;
      measure::ColumnarCampaignResult result =
          campaign.run_columnar(schedule, rng);
      const double wall_ms = sw.elapsed_ms();
      const double tps = 1000.0 * static_cast<double>(cp.tests) / wall_ms;

      rec.record(name, wall_ms);
      rec.stat(name, "ases", static_cast<double>(ctx.world.topo->as_count()));
      rec.stat(name, "tests", static_cast<double>(result.tests.size()));
      rec.stat(name, "traceroutes",
               static_cast<double>(result.traceroutes.size()));
      rec.stat(name, "trace_hops",
               static_cast<double>(result.traceroutes.total_hops()));
      rec.stat(name, "paths_interned",
               static_cast<double>(result.paths.size()));
      rec.stat(name, "tests_per_sec", tps);
      rec.stat(name, "peak_rss_mb", bench::peak_rss_mb());
      std::printf(
          "%-12s %10.1f ms  %12.0f tests/sec  rss %8.1f MiB  (%zu tests, %zu "
          "traceroutes, %zu paths)\n",
          name.c_str(), wall_ms, tps, bench::peak_rss_mb(),
          result.tests.size(), result.traceroutes.size(),
          result.paths.size());
      std::fflush(stdout);
    }
  }

  rec.write();
  return 0;
}
