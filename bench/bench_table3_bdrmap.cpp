// Table 3 / Section 5.1: bdrmap border-identification statistics per Ark
// vantage point — AS-level and router-level interdomain interconnections,
// classified as customer / provider / peer — compared against the paper's
// published counts (Jan-Feb 2017 campaign).

#include <cstdio>
#include <map>

#include "common.h"
#include "gen/paper_data.h"
#include "infer/alias.h"
#include "infer/bdrmap.h"
#include "measure/ark.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header(
      "Table 3", "bdrmap border statistics per Ark vantage point");

  bench::Context ctx(bench::bench_config());
  infer::AliasResolver aliases(*ctx.world.topo, 0.88, 42);

  std::map<std::string, const gen::paper::BdrmapRow*> paper_rows;
  for (const auto& row : gen::paper::table3_bdrmap()) {
    paper_rows[std::string(row.vp)] = &row;
  }

  util::TextTable table({"Network", "VP", "AS all", "Rtr all", "AS cust",
                         "Rtr cust", "AS prov", "Rtr prov", "AS peer",
                         "Rtr peer", "paper AS all", "paper Rtr all"});

  util::Rng rng(3);
  for (std::uint32_t vp : ctx.world.ark_vps) {
    const topo::Host& host = ctx.world.topo->host(vp);
    measure::ArkCampaignOptions opt;
    auto corpus =
        measure::ark_full_prefix_campaign(ctx.world, ctx.fwd, vp, opt, rng);
    auto result = infer::run_bdrmap(corpus, host.asn, ctx.ip2as, ctx.orgs,
                                    ctx.world.topo->relationships(), aliases);
    auto counts = result.counts();

    std::string network = "?";
    auto it = ctx.isp_of.find(host.asn);
    if (it != ctx.isp_of.end()) network = it->second;
    const auto* paper =
        paper_rows.count(host.label) ? paper_rows.at(host.label) : nullptr;
    table.add_row(
        {network, host.label, std::to_string(counts.as_total),
         std::to_string(counts.router_total), std::to_string(counts.as_cust),
         std::to_string(counts.router_cust), std::to_string(counts.as_prov),
         std::to_string(counts.router_prov), std::to_string(counts.as_peer),
         std::to_string(counts.router_peer),
         paper ? std::to_string(paper->all_as) : "-",
         paper ? std::to_string(paper->all_router) : "-"});
  }
  std::printf("%s", table.render().c_str());
  bench::print_footnote(
      "absolute counts scale with the generator's customer_scale "
      "(NETCONG_BENCH_SCALE); the shape to check is cust >> peer > prov and "
      "router-level counts exceeding AS-level counts");
  return 0;
}
