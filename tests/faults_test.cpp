// The fault-injection layer itself: named sites, the severity preset, the
// (seed, site, item) determinism contract, the scheduled-outage model, and
// the data-quality accounting invariant.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "helpers.h"
#include "sim/faults.h"

namespace netcong::sim {
namespace {

TEST(FaultSites, NamedAndDescribed) {
  const auto& sites = all_fault_sites();
  EXPECT_EQ(sites.size(), 13u);
  std::set<std::string> names;
  for (FaultSite site : sites) {
    std::string name = fault_site_name(site);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(std::string(fault_site_description(site)), "");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), sites.size());  // unique
}

TEST(FaultConfig, ScaledSeverityIsMonotone) {
  FaultConfig zero = FaultConfig::scaled(0.0);
  FaultConfig mid = FaultConfig::scaled(0.3);
  FaultConfig full = FaultConfig::scaled(1.0);
  EXPECT_TRUE(zero.enabled);
  EXPECT_EQ(zero.ndt_abort_prob, 0.0);
  EXPECT_EQ(zero.server_outage_fraction, 0.0);
  EXPECT_GT(mid.ndt_abort_prob, 0.0);
  EXPECT_LT(mid.ndt_abort_prob, full.ndt_abort_prob);
  EXPECT_LT(mid.server_outage_fraction, full.server_outage_fraction);
  EXPECT_LE(full.server_outage_fraction, 1.0);
}

TEST(FaultConfig, ParseSeverity) {
  auto ok = parse_fault_severity("0.2");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->enabled);
  EXPECT_GT(ok->ndt_abort_prob, 0.0);

  for (const char* bad : {"", "abc", "-0.1", "1.5", "0.2x"}) {
    auto r = parse_fault_severity(bad);
    EXPECT_FALSE(r.ok()) << bad;
    EXPECT_FALSE(r.error().empty()) << bad;
  }
}

TEST(FaultInjector, StreamsArePureFunctionsOfSiteAndItem) {
  FaultInjector inj(FaultConfig::scaled(0.5), 42);
  // Same (site, item) -> same stream, regardless of call order or what
  // other streams were taken in between.
  util::Rng a = inj.stream(FaultSite::kNdtAbort, 7);
  (void)inj.stream(FaultSite::kProbeLoss, 3);
  (void)inj.stream(FaultSite::kNdtAbort, 8);
  util::Rng b = inj.stream(FaultSite::kNdtAbort, 7);
  EXPECT_EQ(a.seed(), b.seed());
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());

  // Distinct sites and distinct items give distinct streams.
  std::set<std::uint64_t> seeds;
  for (FaultSite site : all_fault_sites()) {
    for (std::uint64_t item = 0; item < 20; ++item) {
      seeds.insert(inj.stream(site, item).seed());
    }
  }
  EXPECT_EQ(seeds.size(), all_fault_sites().size() * 20);
}

TEST(FaultInjector, FiresIsDeterministicAndGated) {
  FaultConfig cfg = FaultConfig::scaled(0.5);
  FaultInjector inj(cfg, 42);
  FaultInjector same(cfg, 42);
  FaultInjector other(cfg, 43);
  int fired = 0, differs = 0;
  for (std::uint64_t item = 0; item < 500; ++item) {
    bool f = inj.fires(FaultSite::kNdtAbort, item, 0.3);
    EXPECT_EQ(f, same.fires(FaultSite::kNdtAbort, item, 0.3));
    fired += f ? 1 : 0;
    differs += f != other.fires(FaultSite::kNdtAbort, item, 0.3) ? 1 : 0;
  }
  EXPECT_GT(fired, 100);  // ~150 expected
  EXPECT_LT(fired, 220);
  EXPECT_GT(differs, 50);  // different seed -> different decisions

  // Gates: probability zero never fires; a disabled injector never fires.
  EXPECT_FALSE(inj.fires(FaultSite::kNdtAbort, 1, 0.0));
  FaultConfig off = cfg;
  off.enabled = false;
  FaultInjector disabled(off, 42);
  for (std::uint64_t item = 0; item < 100; ++item) {
    EXPECT_FALSE(disabled.fires(FaultSite::kNdtAbort, item, 1.0));
  }
}

TEST(FaultInjector, OutageWindowsHaveConfiguredDuration) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.server_outage_fraction = 1.0;
  cfg.outage_duration_hours = 12.0;
  cfg.outage_horizon_hours = 336.0;
  FaultInjector inj(cfg, 7);
  for (std::uint32_t server : {1u, 2u, 55u}) {
    // Sample every half hour past the horizon so a window starting late is
    // still fully observed; a 12h window holds exactly 24 sample points.
    int down = 0;
    bool repeatable = true;
    for (double t = 0.25; t < cfg.outage_horizon_hours + 24.0; t += 0.5) {
      bool d = inj.server_down(server, t);
      repeatable = repeatable && d == inj.server_down(server, t);
      down += d ? 1 : 0;
    }
    EXPECT_EQ(down, 24) << "server " << server;
    EXPECT_TRUE(repeatable);
  }
}

TEST(FaultInjector, FlappingIsPeriodic) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.server_flap_fraction = 1.0;
  cfg.flap_period_hours = 8.0;
  cfg.flap_down_hours = 0.5;
  FaultInjector inj(cfg, 7);
  int down = 0, total = 0;
  for (double t = 0.05; t < 8.0; t += 0.1, ++total) {
    bool d = inj.server_down(9, t);
    down += d ? 1 : 0;
    EXPECT_EQ(d, inj.server_down(9, t + 8.0));
    EXPECT_EQ(d, inj.server_down(9, t + 80.0));
  }
  // Down 0.5h out of every 8h: ~5 of 80 samples.
  EXPECT_GT(down, 0);
  EXPECT_LT(down, 10);
}

TEST(FaultInjector, NoOutageConfiguredMeansAlwaysUp) {
  FaultConfig cfg;
  cfg.enabled = true;
  FaultInjector inj(cfg, 7);
  for (double t = 0.0; t < 100.0; t += 3.3) {
    EXPECT_FALSE(inj.server_down(3, t));
  }
}

TEST(FaultInjector, DegradePrefix2AsRestagesConfiguredFraction) {
  const gen::World& world = test::tiny_world();
  const auto& announced = world.topo->announced_prefixes();
  ASSERT_GT(announced.size(), 20u);

  std::set<topo::Asn> origins;
  for (const auto& [p, asn] : announced) origins.insert(asn);
  ASSERT_GT(origins.size(), 1u);

  FaultConfig cfg;
  cfg.enabled = true;
  cfg.prefix2as_stale_fraction = 0.25;
  FaultInjector inj(cfg, 11);
  auto stale = inj.degrade_prefix2as(announced);
  ASSERT_EQ(stale.size(), announced.size());

  std::size_t changed = 0;
  for (std::size_t i = 0; i < announced.size(); ++i) {
    EXPECT_EQ(stale[i].first.network, announced[i].first.network);
    EXPECT_EQ(stale[i].first.len, announced[i].first.len);
    if (stale[i].second != announced[i].second) {
      ++changed;
      // The wrong origin is still a real announced AS.
      EXPECT_TRUE(origins.count(stale[i].second)) << i;
    }
  }
  double frac = static_cast<double>(changed) / announced.size();
  EXPECT_GT(frac, 0.10);
  EXPECT_LT(frac, 0.45);

  // Deterministic: a second injector with the same seed agrees entry for
  // entry; a zero fraction changes nothing.
  FaultInjector again(cfg, 11);
  EXPECT_EQ(again.degrade_prefix2as(announced), stale);
  cfg.prefix2as_stale_fraction = 0.0;
  FaultInjector none(cfg, 11);
  EXPECT_EQ(none.degrade_prefix2as(announced), announced);
}

TEST(DataQuality, ConsistencyInvariant) {
  DataQuality q;
  EXPECT_TRUE(q.consistent());  // all-zero report

  q.tests_attempted = 10;
  q.tests_completed = 7;
  q.tests_aborted = 2;
  q.tests_unserved = 1;
  q.traceroutes_scheduled = 7;
  q.traceroutes_completed = 5;
  q.traceroutes_lost_busy = 1;
  q.traceroutes_lost_crash = 1;
  q.tests_truncated = 3;
  EXPECT_TRUE(q.consistent());

  DataQuality dropped = q;
  dropped.tests_completed = 6;  // one record silently vanished
  EXPECT_FALSE(dropped.consistent());

  DataQuality impossible = q;
  impossible.tests_truncated = 8;  // more truncated than completed
  EXPECT_FALSE(impossible.consistent());

  DataQuality lost_trace = q;
  lost_trace.traceroutes_scheduled = 8;
  EXPECT_FALSE(lost_trace.consistent());
}

TEST(DataQuality, RowsCoverEveryCounter) {
  DataQuality q;
  q.tests_attempted = 4;
  q.traceroutes_degraded = 2;
  auto rows = q.rows();
  ASSERT_GE(rows.size(), 17u);
  std::set<std::string> keys;
  bool saw_attempted = false, saw_degraded = false;
  for (const auto& [k, v] : rows) {
    keys.insert(k);
    if (k == "tests_attempted") saw_attempted = v == 4;
    if (k == "traceroutes_degraded") saw_degraded = v == 2;
  }
  EXPECT_EQ(keys.size(), rows.size());  // stable unique names
  EXPECT_TRUE(saw_attempted);
  EXPECT_TRUE(saw_degraded);
}

}  // namespace
}  // namespace netcong::sim
