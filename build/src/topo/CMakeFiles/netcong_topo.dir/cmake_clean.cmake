file(REMOVE_RECURSE
  "CMakeFiles/netcong_topo.dir/dns.cpp.o"
  "CMakeFiles/netcong_topo.dir/dns.cpp.o.d"
  "CMakeFiles/netcong_topo.dir/geo.cpp.o"
  "CMakeFiles/netcong_topo.dir/geo.cpp.o.d"
  "CMakeFiles/netcong_topo.dir/ip.cpp.o"
  "CMakeFiles/netcong_topo.dir/ip.cpp.o.d"
  "CMakeFiles/netcong_topo.dir/relationships.cpp.o"
  "CMakeFiles/netcong_topo.dir/relationships.cpp.o.d"
  "CMakeFiles/netcong_topo.dir/topology.cpp.o"
  "CMakeFiles/netcong_topo.dir/topology.cpp.o.d"
  "libnetcong_topo.a"
  "libnetcong_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcong_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
