// Figure 1 / Section 4.2: AS hops traversed in traceroute paths from M-Lab
// servers to clients in large access ISPs (Assumption 2 of simplified
// AS-level tomography). Reproduces the per-ISP one-hop/two-hop/more split
// and compares the one-hop fraction against the paper's published bars.

#include <cstdio>
#include <map>

#include "common.h"
#include "core/adjacency.h"
#include "gen/paper_data.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header(
      "Figure 1",
      "AS hops from M-Lab servers to clients in large access ISPs (May-2015-"
      "style campaign)");

  bench::Context ctx(bench::bench_config());
  bench::CampaignData data = bench::run_standard_campaign(
      ctx, /*days=*/28, /*tests_per_client=*/8.0, /*seed=*/1);

  std::printf("campaign: %zu NDT tests, %zu traceroutes, matched %.0f%%\n",
              data.result.tests.size(), data.result.traceroutes.size(),
              100.0 * data.match_stats.fraction());

  auto stats = core::analyze_adjacency(data.matched, data.mapit, ctx.ip2as,
                                       ctx.orgs, ctx.isp_of);

  std::map<std::string, double> paper_fraction;
  for (const auto& row : gen::paper::fig1_adjacency()) {
    paper_fraction[std::string(row.isp)] = row.one_hop_fraction;
  }

  util::TextTable table({"ISP", "tests", "1 hop", "2 hops", "2+ hops",
                         "1-hop frac (ours)", "1-hop frac (paper)"});
  for (const auto& s : stats) {
    auto it = paper_fraction.find(s.isp);
    if (it == paper_fraction.end()) continue;  // ISPs outside Figure 1
    table.add_row({s.isp, std::to_string(s.matched_tests),
                   std::to_string(s.one_hop), std::to_string(s.two_hops),
                   std::to_string(s.more_hops),
                   util::format("%.2f", s.one_hop_fraction()),
                   util::format("%.2f", it->second)});
  }
  std::printf("%s", table.render().c_str());
  bench::print_footnote(
      "shape target: top-5 ISPs mostly directly connected (>=0.8); "
      "Charter/Cox/Frontier mostly not; Windstream almost never");
  return 0;
}
