#pragma once

// The Topology container: owns all cities, orgs, ASes, routers, interfaces,
// links and hosts, plus the "control plane views" downstream consumers need:
//  * announced prefixes (the BGP view used for prefix-to-AS mapping, which
//    the generator can intentionally make stale/incomplete),
//  * ground-truth address ownership (who really numbers each block),
//  * IXP prefixes,
//  * the AS relationship table.
//
// Inference code (infer/, core/) must only consume the *observable* views
// (announced prefixes, traceroute output, DNS names); ground truth is for
// generation and validation.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "topo/entities.h"
#include "topo/ids.h"
#include "topo/ip.h"
#include "topo/relationships.h"

namespace netcong::topo {

class Topology {
 public:
  // ---- construction ----
  CityId add_city(City city);
  OrgId add_org(std::string name);
  void add_as(AsInfo info);
  RouterId add_router(Asn owner, CityId city, RouterRole role,
                      std::string name);
  void set_router_mgmt_addr(RouterId id, IpAddr addr);

  struct LinkSpec {
    RouterId router_a;
    RouterId router_b;
    LinkKind kind = LinkKind::kInternal;
    double capacity_mbps = 10000.0;
    double prop_delay_ms = 1.0;
    IpAddr addr_a;
    IpAddr addr_b;
    Asn addr_owner_a = kInvalidAsn;  // default: router owner
    Asn addr_owner_b = kInvalidAsn;
    bool via_ixp = false;
    std::string dns_a;  // optional PTR for side a's interface
    std::string dns_b;
  };
  LinkId add_link(const LinkSpec& spec);

  std::uint32_t add_host(Host host);
  // Mutable access for post-placement attribute assignment (tiers, quality).
  // The address must not be changed through this reference.
  Host& mutable_host(std::uint32_t id) { return hosts_.at(id); }

  // BGP view: prefix announced with the given origin AS.
  void announce_prefix(const Prefix& p, Asn origin);
  // Ground truth: addresses in p are numbered out of AS `owner`'s space.
  void own_prefix(const Prefix& p, Asn owner);
  void add_ixp_prefix(const Prefix& p);

  RelationshipTable& relationships() { return rels_; }
  const RelationshipTable& relationships() const { return rels_; }

  // ---- entity access ----
  const City& city(CityId id) const { return cities_.at(id.index()); }
  const Org& org(OrgId id) const { return orgs_.at(id.index()); }
  const Router& router(RouterId id) const { return routers_.at(id.index()); }
  const Interface& iface(InterfaceId id) const {
    return interfaces_.at(id.index());
  }
  const Link& link(LinkId id) const { return links_.at(id.index()); }
  const Host& host(std::uint32_t id) const { return hosts_.at(id); }

  const std::vector<City>& cities() const { return cities_; }
  const std::vector<Org>& orgs() const { return orgs_; }
  const std::vector<Router>& routers() const { return routers_; }
  const std::vector<Interface>& interfaces() const { return interfaces_; }
  const std::vector<Link>& links() const { return links_; }
  const std::vector<Host>& hosts() const { return hosts_; }

  bool has_as(Asn asn) const { return as_index_.count(asn) > 0; }
  const AsInfo& as_info(Asn asn) const;
  std::vector<Asn> all_asns() const;

  // ---- lookups ----
  std::optional<InterfaceId> interface_by_addr(IpAddr addr) const;
  std::optional<std::uint32_t> host_by_addr(IpAddr addr) const;

  const std::vector<RouterId>& routers_of(Asn asn) const;
  std::vector<RouterId> routers_of(Asn asn, CityId city) const;

  // All interdomain links between the two ASes (either orientation).
  std::vector<LinkId> interdomain_links(Asn a, Asn b) const;
  // All interdomain links with `asn` on either side.
  const std::vector<LinkId>& interdomain_links_of(Asn asn) const;

  std::vector<std::uint32_t> hosts_of(Asn asn) const;
  std::vector<std::uint32_t> hosts_of_kind(HostKind kind) const;

  // Remote endpoint helpers.
  InterfaceId other_side(LinkId link, InterfaceId side) const;
  RouterId remote_router(LinkId link, RouterId local) const;

  // All links (internal or interdomain, including parallel links) directly
  // connecting the two routers.
  const std::vector<LinkId>& links_between(RouterId a, RouterId b) const;

  // ---- control-plane views ----
  // Longest-prefix match in the announced (BGP) view.
  std::optional<Asn> announced_origin(IpAddr addr) const;
  // Ground-truth owner of the address space.
  std::optional<Asn> true_owner(IpAddr addr) const;
  bool is_ixp_addr(IpAddr addr) const;
  const std::vector<std::pair<Prefix, Asn>>& announced_prefixes() const {
    return announced_list_;
  }
  const std::vector<Prefix>& ixp_prefixes() const { return ixp_list_; }

  // Sibling ASes share an organization (paper: "we considered sibling ASes
  // as the same AS hop").
  bool same_org(Asn a, Asn b) const;
  std::vector<Asn> siblings_of(Asn asn) const;

  // ---- stats ----
  std::size_t as_count() const { return as_list_.size(); }
  std::size_t interdomain_link_count() const;

 private:
  std::vector<City> cities_;
  std::vector<Org> orgs_;
  std::vector<AsInfo> as_list_;
  std::unordered_map<Asn, std::size_t> as_index_;
  std::vector<Router> routers_;
  std::vector<Interface> interfaces_;
  std::vector<Link> links_;
  std::vector<Host> hosts_;

  RelationshipTable rels_;

  std::unordered_map<std::uint32_t, InterfaceId> iface_by_addr_;
  std::unordered_map<std::uint32_t, std::uint32_t> host_by_addr_;
  std::unordered_map<Asn, std::vector<RouterId>> routers_by_as_;
  std::unordered_map<std::uint64_t, std::vector<LinkId>> links_by_routers_;
  std::unordered_map<std::uint64_t, std::vector<LinkId>> interdomain_by_pair_;
  std::unordered_map<Asn, std::vector<LinkId>> interdomain_by_as_;

  PrefixTrie<Asn> announced_;
  std::vector<std::pair<Prefix, Asn>> announced_list_;
  PrefixTrie<Asn> owned_;
  PrefixTrie<bool> ixp_;
  std::vector<Prefix> ixp_list_;

  std::vector<RouterId> empty_routers_;
  std::vector<LinkId> empty_links_;

  InterfaceId add_interface(IpAddr addr, RouterId router, Asn addr_owner,
                            LinkId link, std::string dns_name);
  static std::uint64_t pair_key(Asn a, Asn b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  static std::uint64_t router_pair_key(RouterId a, RouterId b) {
    std::uint32_t x = a.value;
    std::uint32_t y = b.value;
    if (x > y) std::swap(x, y);
    return (static_cast<std::uint64_t>(x) << 32) | y;
  }
};

}  // namespace netcong::topo
