#include "check/properties.h"

namespace netcong::check {

const std::vector<Property>& all_properties() {
  static const std::vector<Property> props = [] {
    std::vector<Property> out;
    register_gen_properties(out);
    register_meta_properties(out);
    register_diff_properties(out);
    register_util_properties(out);
    register_ingest_properties(out);
    register_pathmodel_properties(out);
    register_adversary_properties(out);
    return out;
  }();
  return props;
}

const Property* find_property(std::string_view name) {
  for (const Property& p : all_properties()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::vector<std::string> families() {
  std::vector<std::string> out;
  for (const Property& p : all_properties()) {
    bool seen = false;
    for (const std::string& f : out) seen = seen || f == p.family;
    if (!seen) out.push_back(p.family);
  }
  return out;
}

util::pbt::CheckResult run_property(const Property& prop,
                                    util::pbt::Config cfg) {
  if (cfg.iterations <= 0) cfg.iterations = prop.default_iterations;
  return prop.run(cfg);
}

}  // namespace netcong::check
